//! Report deltas: structural comparison of two [`PipelineReport`]s with a
//! configurable gating policy.
//!
//! A pipeline report is a snapshot; regressions only become visible when
//! two snapshots are *compared*.  [`ReportDelta::diff`] walks a base and a
//! current report in parallel and records every metric whose value (or
//! presence) differs — counters and gauges as scalar pairs, timers as
//! nanosecond pairs, histograms bucket-wise.  Diffing a report against
//! itself is empty by construction: an entry is recorded only when the two
//! sides are unequal.
//!
//! Whether a difference is a *failure* is a separate, configurable
//! question.  A [`DeltaPolicy`] assigns each metric class a [`Gate`] —
//! exact, ratio-bounded, or informational — with per-metric overrides, and
//! [`DeltaPolicy::violations`] evaluates a delta against it.  The defaults
//! encode the workspace determinism discipline (DESIGN.md §9): counters
//! and histograms count *work* and must match exactly; gauges and timers
//! are scheduling-dependent and therefore informational unless a policy
//! opts them in.  Policies parse from a small line-oriented text file so
//! CI can pin one next to a committed baseline.

use crate::json::Json;
use crate::report::PipelineReport;

/// The four instrument classes a delta entry can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic work counts.
    Counter,
    /// Last-write-wins descriptive values (scheduling-dependent).
    Gauge,
    /// Accumulated wall time (scheduling-dependent).
    Timer,
    /// Deterministic bucketed work counts.
    Histogram,
}

impl MetricClass {
    /// The lowercase class name used in renderings and policy files.
    pub fn name(self) -> &'static str {
        match self {
            MetricClass::Counter => "counter",
            MetricClass::Gauge => "gauge",
            MetricClass::Timer => "timer",
            MetricClass::Histogram => "histogram",
        }
    }
}

/// One differing scalar metric (counter or gauge).  A `None` side means
/// the metric is absent from that report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarDelta {
    /// Phase the metric was reported under.
    pub phase: String,
    /// Metric name.
    pub name: String,
    /// Value in the base report, if present.
    pub base: Option<u64>,
    /// Value in the current report, if present.
    pub current: Option<u64>,
}

impl ScalarDelta {
    /// Signed absolute change `current - base` (0 when a side is absent).
    pub fn abs_change(&self) -> i128 {
        match (self.base, self.current) {
            (Some(b), Some(c)) => i128::from(c) - i128::from(b),
            _ => 0,
        }
    }

    /// Relative change `(current - base) / base`; infinite when the base
    /// is zero and the current is not, `None` when a side is absent.
    pub fn rel_change(&self) -> Option<f64> {
        let (base, current) = (self.base?, self.current?);
        if base == 0 {
            return Some(if current == 0 { 0.0 } else { f64::INFINITY });
        }
        Some((current as f64 - base as f64) / base as f64)
    }
}

/// One differing timer, compared by total nanoseconds.  Timers are
/// scheduling-dependent: two runs of identical work record different wall
/// times, so timer deltas are informational unless a policy explicitly
/// gates them (usually with a loose ratio and a minimum floor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerDelta {
    /// Phase the timer was reported under.
    pub phase: String,
    /// Metric name.
    pub name: String,
    /// Total nanoseconds in the base report, if present.
    pub base_nanos: Option<u64>,
    /// Total nanoseconds in the current report, if present.
    pub current_nanos: Option<u64>,
}

impl TimerDelta {
    /// `current / base` as a ratio; `None` when a side is absent or the
    /// base is zero.
    pub fn ratio(&self) -> Option<f64> {
        match (self.base_nanos?, self.current_nanos?) {
            (0, _) => None,
            (b, c) => Some(c as f64 / b as f64),
        }
    }
}

/// One differing histogram, compared bucket-wise on raw counts (the
/// derived percentiles are a function of the counts, so they never differ
/// independently).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDelta {
    /// Phase the histogram was reported under.
    pub phase: String,
    /// Metric name.
    pub name: String,
    /// Bucket counts in the base report, if present.
    pub base: Option<Vec<u64>>,
    /// Bucket counts in the current report, if present.
    pub current: Option<Vec<u64>>,
}

impl HistogramDelta {
    /// The differing buckets as `(index, base_count, current_count)`,
    /// treating missing buckets (length mismatch) as zero.  Empty when a
    /// whole side is absent.
    pub fn changed_buckets(&self) -> Vec<(usize, u64, u64)> {
        let (Some(base), Some(current)) = (&self.base, &self.current) else {
            return Vec::new();
        };
        (0..base.len().max(current.len()))
            .filter_map(|i| {
                let b = base.get(i).copied().unwrap_or(0);
                let c = current.get(i).copied().unwrap_or(0);
                (b != c).then_some((i, b, c))
            })
            .collect()
    }
}

/// The structural difference between two [`PipelineReport`]s: every metric
/// whose value or presence differs, grouped by instrument class.  Entry
/// order follows the base report's phase and declaration order, with
/// current-only additions after.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportDelta {
    /// Differing counters.
    pub counters: Vec<ScalarDelta>,
    /// Differing gauges.
    pub gauges: Vec<ScalarDelta>,
    /// Differing timers.
    pub timers: Vec<TimerDelta>,
    /// Differing histograms.
    pub histograms: Vec<HistogramDelta>,
}

/// Walk two name→value lists in base order plus current-only extras,
/// yielding `(name, base, current)` for every name on either side.
fn aligned<'a, T>(
    base: &'a [(String, T)],
    current: &'a [(String, T)],
) -> impl Iterator<Item = (&'a str, Option<&'a T>, Option<&'a T>)> {
    let lookup =
        |side: &'a [(String, T)], name: &str| side.iter().find(|(n, _)| n == name).map(|(_, v)| v);
    base.iter()
        .map(move |(name, value)| (name.as_str(), Some(value), lookup(current, name)))
        .chain(current.iter().filter_map(move |(name, value)| {
            lookup(base, name)
                .is_none()
                .then_some((name.as_str(), None, Some(value)))
        }))
}

impl ReportDelta {
    /// Structurally compare two reports, recording only metrics whose
    /// value or presence differs.  `diff(r, r)` is empty for every `r`.
    pub fn diff(base: &PipelineReport, current: &PipelineReport) -> ReportDelta {
        let mut delta = ReportDelta::default();
        let empty = crate::PhaseReport::default();
        let phase_names: Vec<&str> = base
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .chain(
                current
                    .phases
                    .iter()
                    .filter(|p| base.phase(&p.name).is_none())
                    .map(|p| p.name.as_str()),
            )
            .collect();
        for phase in phase_names {
            let b = base.phase(phase).unwrap_or(&empty);
            let c = current.phase(phase).unwrap_or(&empty);
            for (name, bv, cv) in aligned(&b.counters, &c.counters) {
                if bv != cv {
                    delta.counters.push(ScalarDelta {
                        phase: phase.to_string(),
                        name: name.to_string(),
                        base: bv.copied(),
                        current: cv.copied(),
                    });
                }
            }
            for (name, bv, cv) in aligned(&b.gauges, &c.gauges) {
                if bv != cv {
                    delta.gauges.push(ScalarDelta {
                        phase: phase.to_string(),
                        name: name.to_string(),
                        base: bv.copied(),
                        current: cv.copied(),
                    });
                }
            }
            for (name, bv, cv) in aligned(&b.timers, &c.timers) {
                if bv != cv {
                    delta.timers.push(TimerDelta {
                        phase: phase.to_string(),
                        name: name.to_string(),
                        base_nanos: bv.map(|s| s.nanos),
                        current_nanos: cv.map(|s| s.nanos),
                    });
                }
            }
            for (name, bv, cv) in aligned(&b.histograms, &c.histograms) {
                if bv.map(|s| &s.counts) != cv.map(|s| &s.counts) {
                    delta.histograms.push(HistogramDelta {
                        phase: phase.to_string(),
                        name: name.to_string(),
                        base: bv.map(|s| s.counts.clone()),
                        current: cv.map(|s| s.counts.clone()),
                    });
                }
            }
        }
        delta
    }

    /// Whether nothing differed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.histograms.is_empty()
    }

    /// Render as indented human-readable text.
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return "== report delta: no differences ==\n".to_string();
        }
        let side = |v: Option<u64>| v.map_or("absent".to_string(), |v| v.to_string());
        let mut out = String::from("== report delta ==\n");
        for d in &self.counters {
            let rel = match d.rel_change() {
                Some(r) if r.is_finite() => format!(", {:+.2}%", r * 100.0),
                Some(_) => ", from zero".to_string(),
                None => String::new(),
            };
            out.push_str(&format!(
                "  counter   {} = {} -> {} ({:+}{rel})\n",
                d.name,
                side(d.base),
                side(d.current),
                d.abs_change(),
            ));
        }
        for d in &self.gauges {
            out.push_str(&format!(
                "  gauge     {} = {} -> {} ({:+}) [scheduling-dependent]\n",
                d.name,
                side(d.base),
                side(d.current),
                d.abs_change(),
            ));
        }
        let nanos = |v: Option<u64>| v.map_or("absent".to_string(), |v| format!("{v}ns"));
        for d in &self.timers {
            let ratio = d.ratio().map_or(String::new(), |r| format!(" (x{r:.2})"));
            out.push_str(&format!(
                "  timer     {} = {} -> {}{ratio} [scheduling-dependent]\n",
                d.name,
                nanos(d.base_nanos),
                nanos(d.current_nanos),
            ));
        }
        for d in &self.histograms {
            if d.base.is_none() || d.current.is_none() {
                out.push_str(&format!(
                    "  histogram {} = {} -> {}\n",
                    d.name,
                    if d.base.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                    if d.current.is_some() {
                        "present"
                    } else {
                        "absent"
                    },
                ));
                continue;
            }
            for (bucket, b, c) in d.changed_buckets() {
                out.push_str(&format!(
                    "  histogram {} bucket[{bucket}] = {b} -> {c}\n",
                    d.name
                ));
            }
        }
        out
    }

    /// Render as compact JSON over [`crate::json`].
    pub fn render_json(&self) -> String {
        let scalar = |d: &ScalarDelta| {
            Json::Obj(vec![
                ("phase".to_string(), Json::Str(d.phase.clone())),
                ("name".to_string(), Json::Str(d.name.clone())),
                ("base".to_string(), num_or_null(d.base)),
                ("current".to_string(), num_or_null(d.current)),
            ])
        };
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Arr(self.counters.iter().map(scalar).collect()),
            ),
            (
                "gauges".to_string(),
                Json::Arr(self.gauges.iter().map(scalar).collect()),
            ),
            (
                "timers".to_string(),
                Json::Arr(
                    self.timers
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("phase".to_string(), Json::Str(d.phase.clone())),
                                ("name".to_string(), Json::Str(d.name.clone())),
                                ("base_nanos".to_string(), num_or_null(d.base_nanos)),
                                ("current_nanos".to_string(), num_or_null(d.current_nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|d| {
                            let counts = |side: &Option<Vec<u64>>| match side {
                                Some(counts) => {
                                    Json::Arr(counts.iter().map(|&c| Json::Num(c)).collect())
                                }
                                None => Json::Null,
                            };
                            Json::Obj(vec![
                                ("phase".to_string(), Json::Str(d.phase.clone())),
                                ("name".to_string(), Json::Str(d.name.clone())),
                                ("base".to_string(), counts(&d.base)),
                                ("current".to_string(), counts(&d.current)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }
}

fn num_or_null(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

/// How one metric class (or one overridden metric) is gated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Any difference, including presence on only one side, is a
    /// violation.
    Exact,
    /// The larger side may exceed the smaller by at most `max` (a factor,
    /// e.g. `2.0`); differences where both sides are below `min_value` are
    /// ignored (for timers: a noise floor in nanoseconds, so microsecond
    /// jitter never gates).  A metric present on only one side violates.
    Ratio {
        /// Largest allowed `max(side) / min(side)` factor.
        max: f64,
        /// Ignore differences where both sides are below this value.
        min_value: u64,
    },
    /// Reported in the delta but never a violation.
    Informational,
}

impl Gate {
    fn describe(self) -> String {
        match self {
            Gate::Exact => "exact".to_string(),
            Gate::Ratio { max, min_value } if min_value > 0 => {
                format!("ratio {max} min {min_value}")
            }
            Gate::Ratio { max, .. } => format!("ratio {max}"),
            Gate::Informational => "informational".to_string(),
        }
    }

    /// Whether a scalar pair violates this gate.  `None` means absent.
    fn scalar_violates(self, base: Option<u64>, current: Option<u64>) -> bool {
        match self {
            Gate::Informational => false,
            Gate::Exact => base != current,
            Gate::Ratio { max, min_value } => {
                let (Some(b), Some(c)) = (base, current) else {
                    // Can't form a ratio against an absent side.
                    return true;
                };
                let (lo, hi) = (b.min(c), b.max(c));
                if hi < min_value {
                    return false;
                }
                lo == 0 || hi as f64 / lo as f64 > max
            }
        }
    }
}

/// A gated metric that exceeded its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Instrument class of the offending metric.
    pub class: MetricClass,
    /// Metric name.
    pub name: String,
    /// Human-readable description naming the metric and its gate.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.class.name(), self.name, self.detail)
    }
}

/// Per-class gates with per-metric overrides, the unit CI pins in a policy
/// file next to a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPolicy {
    /// Gate for counters (default: [`Gate::Exact`] — counters count work).
    pub counters: Gate,
    /// Gate for gauges (default: [`Gate::Informational`] —
    /// scheduling-dependent).
    pub gauges: Gate,
    /// Gate for timers (default: [`Gate::Informational`] — wall time).
    pub timers: Gate,
    /// Gate for histograms (default: [`Gate::Exact`] — bucketed work).
    pub histograms: Gate,
    /// Per-metric overrides, first match wins.  A pattern is an exact
    /// metric name or a `prefix.*` wildcard.
    pub overrides: Vec<(String, Gate)>,
}

impl Default for DeltaPolicy {
    fn default() -> DeltaPolicy {
        DeltaPolicy {
            counters: Gate::Exact,
            gauges: Gate::Informational,
            timers: Gate::Informational,
            histograms: Gate::Exact,
            overrides: Vec::new(),
        }
    }
}

impl DeltaPolicy {
    /// The gate in force for one metric: the first matching override, else
    /// the class default.
    pub fn gate_for(&self, class: MetricClass, name: &str) -> Gate {
        for (pattern, gate) in &self.overrides {
            let matched = match pattern.strip_suffix(".*") {
                Some(prefix) => name
                    .strip_prefix(prefix)
                    .is_some_and(|rest| rest.starts_with('.')),
                None => name == pattern,
            };
            if matched {
                return *gate;
            }
        }
        match class {
            MetricClass::Counter => self.counters,
            MetricClass::Gauge => self.gauges,
            MetricClass::Timer => self.timers,
            MetricClass::Histogram => self.histograms,
        }
    }

    /// Evaluate a delta, returning one [`Violation`] per gated metric that
    /// exceeds its threshold, in delta order.
    pub fn violations(&self, delta: &ReportDelta) -> Vec<Violation> {
        let mut out = Vec::new();
        let scalar_side = |v: Option<u64>| v.map_or("absent".to_string(), |v| v.to_string());
        for (class, scalars) in [
            (MetricClass::Counter, &delta.counters),
            (MetricClass::Gauge, &delta.gauges),
        ] {
            for d in scalars {
                let gate = self.gate_for(class, &d.name);
                if gate.scalar_violates(d.base, d.current) {
                    out.push(Violation {
                        class,
                        name: d.name.clone(),
                        detail: format!(
                            "{} -> {} exceeds gate `{}`",
                            scalar_side(d.base),
                            scalar_side(d.current),
                            gate.describe()
                        ),
                    });
                }
            }
        }
        let nanos = |v: Option<u64>| v.map_or("absent".to_string(), |v| format!("{v}ns"));
        for d in &delta.timers {
            let gate = self.gate_for(MetricClass::Timer, &d.name);
            if gate.scalar_violates(d.base_nanos, d.current_nanos) {
                out.push(Violation {
                    class: MetricClass::Timer,
                    name: d.name.clone(),
                    detail: format!(
                        "{} -> {} exceeds gate `{}`",
                        nanos(d.base_nanos),
                        nanos(d.current_nanos),
                        gate.describe()
                    ),
                });
            }
        }
        for d in &delta.histograms {
            let gate = self.gate_for(MetricClass::Histogram, &d.name);
            if matches!(gate, Gate::Informational) {
                continue;
            }
            let violates = match (&d.base, &d.current) {
                (Some(_), Some(_)) => d
                    .changed_buckets()
                    .iter()
                    .any(|&(_, b, c)| gate.scalar_violates(Some(b), Some(c))),
                _ => true,
            };
            if violates {
                out.push(Violation {
                    class: MetricClass::Histogram,
                    name: d.name.clone(),
                    detail: format!("bucket counts differ, exceeding gate `{}`", gate.describe()),
                });
            }
        }
        out
    }

    /// Parse a line-oriented policy file.  Blank lines and `#` comments
    /// are ignored; each remaining line is either a class default or a
    /// per-metric override:
    ///
    /// ```text
    /// counters exact
    /// gauges info
    /// timers ratio 2.0 min 50000000
    /// histograms exact
    /// metric bench.profile.release exact
    /// metric detect.watch.* info
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and a description of the first
    /// malformed line.
    pub fn parse(text: &str) -> Result<DeltaPolicy, String> {
        let mut policy = DeltaPolicy::default();
        for (i, raw) in text.lines().enumerate() {
            let at = |e: String| format!("line {}: {e}", i + 1);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let subject = tokens.next().expect("non-blank line has a first token");
            let (target, gate_tokens): (&str, Vec<&str>) = if subject == "metric" {
                let name = tokens
                    .next()
                    .ok_or_else(|| at("`metric` requires a name".to_string()))?;
                (name, tokens.collect())
            } else {
                (subject, tokens.collect())
            };
            let gate = parse_gate(&gate_tokens).map_err(at)?;
            if subject == "metric" {
                policy.overrides.push((target.to_string(), gate));
                continue;
            }
            match target {
                "counters" => policy.counters = gate,
                "gauges" => policy.gauges = gate,
                "timers" => policy.timers = gate,
                "histograms" => policy.histograms = gate,
                other => return Err(at(format!("unknown metric class `{other}`"))),
            }
        }
        Ok(policy)
    }
}

/// Parse the gate tokens of one policy line: `exact`, `info`, or
/// `ratio F [min N]`.
fn parse_gate(tokens: &[&str]) -> Result<Gate, String> {
    match tokens {
        ["exact"] => Ok(Gate::Exact),
        ["info"] | ["informational"] => Ok(Gate::Informational),
        ["ratio", max, rest @ ..] => {
            let max: f64 = max
                .parse()
                .map_err(|_| format!("bad ratio factor `{max}`"))?;
            if !max.is_finite() || max < 1.0 {
                return Err(format!("ratio factor must be >= 1.0, got `{max}`"));
            }
            let min_value = match rest {
                [] => 0,
                ["min", n] => n.parse().map_err(|_| format!("bad min value `{n}`"))?,
                _ => return Err(format!("unexpected tokens after ratio: {rest:?}")),
            };
            Ok(Gate::Ratio { max, min_value })
        }
        [] => Err("missing gate (expected `exact`, `info`, or `ratio F [min N]`)".to_string()),
        other => Err(format!("unknown gate `{}`", other.join(" "))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistogramSnapshot, PhaseReport, TimerSnapshot};

    fn report(counter: u64, timer_nanos: u64, bucket0: u64) -> PipelineReport {
        PipelineReport {
            phases: vec![PhaseReport {
                name: "infer".to_string(),
                counters: vec![("infer.pairs.evaluated".to_string(), counter)],
                gauges: vec![("infer.pool.workers".to_string(), 2)],
                timers: vec![(
                    "infer.time".to_string(),
                    TimerSnapshot {
                        nanos: timer_nanos,
                        spans: 1,
                    },
                )],
                histograms: vec![(
                    "infer.candidates.by_template".to_string(),
                    HistogramSnapshot::from_counts(&[0, 1], vec![bucket0, 2, 0], 2),
                )],
            }],
        }
    }

    #[test]
    fn self_diff_is_empty() {
        let r = report(100, 5_000, 3);
        let delta = ReportDelta::diff(&r, &r);
        assert!(delta.is_empty());
        assert!(DeltaPolicy::default().violations(&delta).is_empty());
        assert_eq!(delta.render_text(), "== report delta: no differences ==\n");
    }

    #[test]
    fn diff_records_each_changed_class() {
        let base = report(100, 5_000, 3);
        let current = report(101, 20_000, 4);
        let delta = ReportDelta::diff(&base, &current);
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters[0].abs_change(), 1);
        assert_eq!(delta.counters[0].rel_change(), Some(0.01));
        assert!(delta.gauges.is_empty()); // equal on both sides
        assert_eq!(delta.timers.len(), 1);
        assert_eq!(delta.timers[0].ratio(), Some(4.0));
        assert_eq!(delta.histograms.len(), 1);
        assert_eq!(delta.histograms[0].changed_buckets(), vec![(0, 3, 4)]);
    }

    #[test]
    fn default_policy_gates_counters_and_histograms_only() {
        let delta = ReportDelta::diff(&report(100, 5_000, 3), &report(101, 20_000, 4));
        let violations = DeltaPolicy::default().violations(&delta);
        let names: Vec<&str> = violations.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["infer.pairs.evaluated", "infer.candidates.by_template"]
        );
        // The violation names the metric and the gate.
        assert!(violations[0].detail.contains("exact"));
        assert!(violations[0].to_string().contains("infer.pairs.evaluated"));
    }

    #[test]
    fn missing_metrics_and_phases_are_structural_differences() {
        let base = report(100, 5_000, 3);
        let mut current = base.clone();
        current.phases[0].counters.clear();
        current.phases.push(PhaseReport::new("extra"));
        let delta = ReportDelta::diff(&base, &current);
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters[0].base, Some(100));
        assert_eq!(delta.counters[0].current, None);
        assert!(!DeltaPolicy::default().violations(&delta).is_empty());
        // The extra phase is empty, so it contributes no entries; a
        // current-only *metric* does.
        let mut with_new = base.clone();
        with_new.phases[0]
            .counters
            .push(("infer.new.metric".to_string(), 7));
        let delta = ReportDelta::diff(&base, &with_new);
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters[0].base, None);
        assert_eq!(delta.counters[0].current, Some(7));
    }

    #[test]
    fn ratio_gate_allows_within_factor_and_honors_the_floor() {
        let gate = Gate::Ratio {
            max: 2.0,
            min_value: 1_000,
        };
        assert!(!gate.scalar_violates(Some(10_000), Some(19_999)));
        assert!(gate.scalar_violates(Some(10_000), Some(20_001)));
        assert!(gate.scalar_violates(Some(20_001), Some(10_000))); // symmetric
        assert!(!gate.scalar_violates(Some(1), Some(999))); // both below floor
        assert!(gate.scalar_violates(Some(0), Some(5_000))); // zero base
        assert!(gate.scalar_violates(None, Some(5_000))); // absent side
    }

    #[test]
    fn policy_file_parses_classes_overrides_and_wildcards() {
        let text = "\
# CI gate for BENCH_5.json
counters exact
gauges info
timers ratio 2.0 min 50000000
histograms exact
metric bench.profile.release exact
metric detect.watch.* info
";
        let policy = DeltaPolicy::parse(text).expect("parses");
        assert_eq!(policy.counters, Gate::Exact);
        assert_eq!(
            policy.timers,
            Gate::Ratio {
                max: 2.0,
                min_value: 50_000_000
            }
        );
        assert_eq!(
            policy.gate_for(MetricClass::Gauge, "bench.profile.release"),
            Gate::Exact
        );
        assert_eq!(
            policy.gate_for(MetricClass::Counter, "detect.watch.cycles"),
            Gate::Informational
        );
        // The wildcard needs the dot: `detect.watchdog` does not match.
        assert_eq!(
            policy.gate_for(MetricClass::Counter, "detect.watchdog"),
            Gate::Exact
        );
    }

    #[test]
    fn policy_file_rejects_malformed_lines() {
        for bad in [
            "counters",
            "counters maybe",
            "widgets exact",
            "metric exact",
            "timers ratio nope",
            "timers ratio 0.5",
            "timers ratio 2.0 min x",
            "timers ratio 2.0 extra stuff",
        ] {
            let err = DeltaPolicy::parse(bad).expect_err(bad);
            assert!(err.starts_with("line 1:"), "{bad}: {err}");
        }
    }

    #[test]
    fn json_rendering_is_valid_and_structured() {
        let delta = ReportDelta::diff(&report(100, 5_000, 3), &report(101, 20_000, 4));
        let json = crate::json::parse(&delta.render_json()).expect("valid JSON");
        let counters = json.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("infer.pairs.evaluated")
        );
        assert_eq!(counters[0].get("base").and_then(Json::as_u64), Some(100));
        // Text rendering names every changed metric.
        let text = delta.render_text();
        assert!(text.contains("counter   infer.pairs.evaluated = 100 -> 101 (+1, +1.00%)"));
        assert!(text.contains("timer     infer.time"));
        assert!(text.contains("histogram infer.candidates.by_template bucket[0] = 3 -> 4"));
    }
}
