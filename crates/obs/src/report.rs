//! Per-phase and whole-pipeline report types with text and JSON renderers.
//!
//! A [`PhaseReport`] is a point-in-time snapshot of one pipeline phase's
//! instruments; a [`PipelineReport`] is the ordered roll-up across all six
//! phases (`collect`, `assemble`, `infer`, `stats`, `filter`, `detect`).
//! JSON rendering is hand-rolled over [`crate::json`] and `parse_json`
//! inverts it exactly, so reports can be written by one process and
//! validated by another (the CI pipeline-report step does exactly that).

use crate::json::{self, Json, JsonError};
use crate::{Counter, Gauge, Histogram, Timer};
use std::collections::BTreeMap;

/// A timer's accumulated state: total nanoseconds over how many spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct TimerSnapshot {
    /// Total recorded wall time in nanoseconds.
    pub nanos: u64,
    /// Number of spans that contributed.
    pub spans: u64,
}

/// A histogram's accumulated state: bucket counts plus interpolated
/// percentile estimates (see [`Histogram::quantile_from`] — upper-bound
/// estimates, rounded to whole units).  The percentiles are derived from
/// the counts and the instrument's bounds at snapshot time; they ride
/// along because the bounds are not part of the report.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket counts, one per bound plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Exact running sum of observed values (wrapping, see
    /// [`Histogram::sum`]).
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Build a snapshot from raw bucket counts and the exact value sum
    /// over the given bounds, computing the percentile estimates.
    pub fn from_counts(bounds: &[u64], counts: Vec<u64>, sum: u64) -> HistogramSnapshot {
        let p = |q: f64| Histogram::quantile_from(bounds, &counts, q).round() as u64;
        HistogramSnapshot {
            p50: p(0.50),
            p95: p(0.95),
            p99: p(0.99),
            counts,
            sum,
        }
    }
}

/// Snapshot of one pipeline phase's instruments.  Entry order is the
/// declaration order chosen by the phase, and is preserved through JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseReport {
    /// Phase name (`collect`, `assemble`, `infer`, `stats`, `filter`,
    /// `detect`).
    pub name: String,
    /// Counter name → total.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, u64)>,
    /// Timer name → snapshot.
    pub timers: Vec<(String, TimerSnapshot)>,
    /// Histogram name → snapshot (bucket counts + percentile estimates).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl PhaseReport {
    /// An empty report for the named phase.
    pub fn new(name: &str) -> PhaseReport {
        PhaseReport {
            name: name.to_string(),
            ..PhaseReport::default()
        }
    }

    /// Record a counter's current total.
    #[must_use]
    pub fn counter(mut self, counter: &Counter) -> PhaseReport {
        self.counters
            .push((counter.name().to_string(), counter.get()));
        self
    }

    /// Record a gauge's current value.
    #[must_use]
    pub fn gauge(mut self, gauge: &Gauge) -> PhaseReport {
        self.gauges.push((gauge.name().to_string(), gauge.get()));
        self
    }

    /// Record a timer's current snapshot.
    #[must_use]
    pub fn timer(mut self, timer: &Timer) -> PhaseReport {
        self.timers
            .push((timer.name().to_string(), timer.snapshot()));
        self
    }

    /// Record a histogram's current bucket counts and percentile
    /// estimates.
    #[must_use]
    pub fn histogram(mut self, histogram: &Histogram) -> PhaseReport {
        self.histograms.push((
            histogram.name().to_string(),
            HistogramSnapshot::from_counts(histogram.bounds(), histogram.counts(), histogram.sum()),
        ));
        self
    }

    /// Fold another snapshot's entries into this one, keeping this phase's
    /// name — used when two crates contribute to one phase (parser and
    /// assembler both feed `assemble`).
    #[must_use]
    pub fn merge(mut self, other: PhaseReport) -> PhaseReport {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.timers.extend(other.timers);
        self.histograms.extend(other.histograms);
        self
    }

    /// Look up a counter total by metric name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn to_json(&self) -> Json {
        let pairs = |entries: &[(String, u64)]| {
            Json::Obj(
                entries
                    .iter()
                    .map(|(name, value)| (name.clone(), Json::Num(*value)))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("counters".to_string(), pairs(&self.counters)),
            ("gauges".to_string(), pairs(&self.gauges)),
            (
                "timers".to_string(),
                Json::Obj(
                    self.timers
                        .iter()
                        .map(|(name, snap)| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    ("nanos".to_string(), Json::Num(snap.nanos)),
                                    ("spans".to_string(), Json::Num(snap.spans)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, snap)| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    (
                                        "counts".to_string(),
                                        Json::Arr(
                                            snap.counts.iter().map(|&c| Json::Num(c)).collect(),
                                        ),
                                    ),
                                    ("sum".to_string(), Json::Num(snap.sum)),
                                    ("p50".to_string(), Json::Num(snap.p50)),
                                    ("p95".to_string(), Json::Num(snap.p95)),
                                    ("p99".to_string(), Json::Num(snap.p99)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<PhaseReport, String> {
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("phase is missing `name`")?
            .to_string();
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            value
                .get(key)
                .and_then(Json::as_obj)
                .ok_or(format!("phase `{name}` is missing `{key}`"))?
                .iter()
                .map(|(n, v)| {
                    v.as_u64()
                        .map(|v| (n.clone(), v))
                        .ok_or(format!("`{n}` is not a number"))
                })
                .collect()
        };
        let counters = pairs("counters")?;
        let gauges = pairs("gauges")?;
        let timers = value
            .get("timers")
            .and_then(Json::as_obj)
            .ok_or(format!("phase `{name}` is missing `timers`"))?
            .iter()
            .map(|(n, v)| {
                let field = |f: &str| {
                    v.get(f)
                        .and_then(Json::as_u64)
                        .ok_or(format!("timer `{n}` is missing `{f}`"))
                };
                Ok((
                    n.clone(),
                    TimerSnapshot {
                        nanos: field("nanos")?,
                        spans: field("spans")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = value
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or(format!("phase `{name}` is missing `histograms`"))?
            .iter()
            .map(|(n, v)| {
                let counts = v
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or(format!("histogram `{n}` is missing `counts`"))?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .ok_or(format!("histogram `{n}` has a non-number"))
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                let field = |f: &str| {
                    v.get(f)
                        .and_then(Json::as_u64)
                        .ok_or(format!("histogram `{n}` is missing `{f}`"))
                };
                Ok((
                    n.clone(),
                    HistogramSnapshot {
                        counts,
                        // `sum` arrived with the exposition work; reports
                        // written before it (committed perf baselines)
                        // parse as sum 0 rather than erroring.
                        sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
                        p50: field("p50")?,
                        p95: field("p95")?,
                        p99: field("p99")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(PhaseReport {
            name,
            counters,
            gauges,
            timers,
            histograms,
        })
    }
}

/// The whole-pipeline roll-up: one [`PhaseReport`] per phase, in pipeline
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PipelineReport {
    /// Per-phase snapshots, in pipeline order.
    pub phases: Vec<PhaseReport>,
}

impl PipelineReport {
    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// All counters across phases, flattened to `name → total`.  Counter
    /// names are globally unique (they embed their phase), so this is
    /// lossless; it is what the determinism tests compare across worker
    /// counts.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.phases
            .iter()
            .flat_map(|p| p.counters.iter().cloned())
            .collect()
    }

    /// All histograms across phases, flattened to `name → bucket counts`.
    /// Histogram totals are deterministic for the same input, like
    /// counters (the derived percentiles are a pure function of the
    /// counts, so they need no separate determinism treatment).
    pub fn histograms(&self) -> BTreeMap<String, Vec<u64>> {
        self.phases
            .iter()
            .flat_map(|p| p.histograms.iter())
            .map(|(name, snap)| (name.clone(), snap.counts.clone()))
            .collect()
    }

    /// The change since `baseline`: counters, timers, and histogram
    /// counts/sums are subtracted by name within each phase (saturating,
    /// so a restarted baseline degrades to the cumulative view instead of
    /// wrapping); gauges are point-in-time values and pass through
    /// unchanged.  Histogram percentiles are recomputed from the delta
    /// counts via `bounds_of` (bounds are not carried in reports); a miss
    /// leaves the estimates at the index scale.  Entries absent from the
    /// baseline are kept whole.
    ///
    /// This is what lets the watch daemon keep the global sink cumulative
    /// (monotone for scrapers) while still emitting per-cycle JSONL: each
    /// cycle diffs the current roll-up against the previous cycle's.
    #[must_use]
    pub fn delta_since(
        &self,
        baseline: &PipelineReport,
        bounds_of: &dyn Fn(&str) -> Option<&'static [u64]>,
    ) -> PipelineReport {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                let base = baseline.phase(&phase.name);
                let base_counter =
                    |name: &str| base.and_then(|b| b.counter_value(name)).unwrap_or(0);
                PhaseReport {
                    name: phase.name.clone(),
                    counters: phase
                        .counters
                        .iter()
                        .map(|(name, v)| (name.clone(), v.saturating_sub(base_counter(name))))
                        .collect(),
                    gauges: phase.gauges.clone(),
                    timers: phase
                        .timers
                        .iter()
                        .map(|(name, snap)| {
                            let b = base
                                .and_then(|b| {
                                    b.timers.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
                                })
                                .unwrap_or_default();
                            (
                                name.clone(),
                                TimerSnapshot {
                                    nanos: snap.nanos.saturating_sub(b.nanos),
                                    spans: snap.spans.saturating_sub(b.spans),
                                },
                            )
                        })
                        .collect(),
                    histograms: phase
                        .histograms
                        .iter()
                        .map(|(name, snap)| {
                            let counts = match base.and_then(|b| {
                                b.histograms.iter().find(|(n, _)| n == name).map(|(_, s)| s)
                            }) {
                                Some(b) if b.counts.len() == snap.counts.len() => snap
                                    .counts
                                    .iter()
                                    .zip(&b.counts)
                                    .map(|(c, bc)| c.saturating_sub(*bc))
                                    .collect(),
                                _ => snap.counts.clone(),
                            };
                            let base_sum = base
                                .and_then(|b| {
                                    b.histograms
                                        .iter()
                                        .find(|(n, _)| n == name)
                                        .map(|(_, s)| s.sum)
                                })
                                .unwrap_or(0);
                            let index_bounds: Vec<u64>;
                            let bounds = match bounds_of(name) {
                                Some(bounds) => bounds,
                                None => {
                                    index_bounds =
                                        (0..counts.len().saturating_sub(1) as u64).collect();
                                    &index_bounds
                                }
                            };
                            (
                                name.clone(),
                                HistogramSnapshot::from_counts(
                                    bounds,
                                    counts,
                                    snap.sum.wrapping_sub(base_sum),
                                ),
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        PipelineReport { phases }
    }

    /// Render as indented human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::from("== pipeline report ==\n");
        for phase in &self.phases {
            out.push_str(&format!("phase {}\n", phase.name));
            for (name, value) in &phase.counters {
                out.push_str(&format!("  counter   {name} = {value}\n"));
            }
            for (name, value) in &phase.gauges {
                out.push_str(&format!("  gauge     {name} = {value}\n"));
            }
            for (name, snap) in &phase.timers {
                out.push_str(&format!(
                    "  timer     {name} = {} over {} span(s)\n",
                    render_duration(snap.nanos),
                    snap.spans
                ));
            }
            for (name, snap) in &phase.histograms {
                let rendered: Vec<String> = snap.counts.iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    "  histogram {name} = [{}] p50~{} p95~{} p99~{}\n",
                    rendered.join(", "),
                    snap.p50,
                    snap.p95,
                    snap.p99
                ));
            }
        }
        out
    }

    /// Render as compact JSON: `{"phases":[...]}`.
    pub fn render_json(&self) -> String {
        Json::Obj(vec![(
            "phases".to_string(),
            Json::Arr(self.phases.iter().map(PhaseReport::to_json).collect()),
        )])
        .render()
    }

    /// Parse the output of [`PipelineReport::render_json`] back into a
    /// report.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`JsonError`] for malformed JSON; schema
    /// mismatches (missing keys, wrong types) are reported at offset 0.
    pub fn parse_json(text: &str) -> Result<PipelineReport, JsonError> {
        let value = json::parse(text)?;
        let schema = |message: String| JsonError { at: 0, message };
        let phases = value
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema("report is missing `phases`".to_string()))?
            .iter()
            .map(PhaseReport::from_json)
            .collect::<Result<Vec<_>, String>>()
            .map_err(schema)?;
        Ok(PipelineReport { phases })
    }
}

/// Human-readable duration: picks the largest unit that keeps the value
/// above one.
fn render_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        PipelineReport {
            phases: vec![
                PhaseReport {
                    name: "collect".to_string(),
                    counters: vec![("collect.images.built".to_string(), 12)],
                    gauges: vec![("collect.depth".to_string(), 3)],
                    timers: vec![(
                        "collect.build".to_string(),
                        TimerSnapshot {
                            nanos: 1_500_000,
                            spans: 12,
                        },
                    )],
                    histograms: vec![(
                        "collect.sizes".to_string(),
                        HistogramSnapshot::from_counts(&[1, 2, 4], vec![1, 0, 2], 9),
                    )],
                },
                PhaseReport::new("detect"),
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let json = report.render_json();
        let back = PipelineReport::parse_json(&json).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.render_json(), json);
    }

    #[test]
    fn text_rendering_shows_every_instrument() {
        let text = sample().render_text();
        assert!(text.contains("phase collect"));
        assert!(text.contains("counter   collect.images.built = 12"));
        assert!(text.contains("gauge     collect.depth = 3"));
        assert!(text.contains("timer     collect.build = 1.500ms over 12 span(s)"));
        // Counts [1, 0, 2] over bounds [1, 2, 4]: ranks 1.5 and beyond
        // fall in the (2, 4] bucket.
        assert!(text.contains("histogram collect.sizes = [1, 0, 2] p50~3 p95~4 p99~4"));
        assert!(text.contains("phase detect"));
    }

    #[test]
    fn lookups_and_flattening() {
        let report = sample();
        assert!(report.phase("collect").is_some());
        assert!(report.phase("missing").is_none());
        assert_eq!(
            report
                .phase("collect")
                .unwrap()
                .counter_value("collect.images.built"),
            Some(12)
        );
        assert_eq!(report.counters()["collect.images.built"], 12);
        assert_eq!(report.histograms()["collect.sizes"], vec![1, 0, 2]);
    }

    #[test]
    fn merge_keeps_name_and_appends_entries() {
        static EXTRA: Counter = Counter::new("assemble.extra");
        let merged = PhaseReport::new("assemble").merge(PhaseReport::new("parser").counter(&EXTRA));
        assert_eq!(merged.name, "assemble");
        assert_eq!(merged.counter_value("assemble.extra"), Some(0));
    }

    #[test]
    fn parse_rejects_schema_mismatches() {
        assert!(PipelineReport::parse_json("{}").is_err());
        assert!(PipelineReport::parse_json("{\"phases\":[{}]}").is_err());
        assert!(PipelineReport::parse_json("not json").is_err());
        let missing_timers = "{\"phases\":[{\"name\":\"x\",\"counters\":{},\"gauges\":{}}]}";
        assert!(PipelineReport::parse_json(missing_timers).is_err());
    }

    #[test]
    fn parse_accepts_reports_without_histogram_sum() {
        // Reports committed before `sum` existed (perf baselines) must
        // still parse; the missing field reads as 0.
        let legacy = "{\"phases\":[{\"name\":\"x\",\"counters\":{},\"gauges\":{},\"timers\":{},\
            \"histograms\":{\"x.h\":{\"counts\":[1,2],\"p50\":1,\"p95\":1,\"p99\":1}}}]}";
        let report = PipelineReport::parse_json(legacy).expect("legacy report parses");
        assert_eq!(report.phases[0].histograms[0].1.sum, 0);
        assert_eq!(report.phases[0].histograms[0].1.counts, vec![1, 2]);
    }

    #[test]
    fn delta_since_subtracts_cumulatives_and_passes_gauges_through() {
        let bounds: &[u64] = &[1, 2, 4];
        let at = |counters: u64, gauge: u64, nanos: u64, spans: u64, counts: Vec<u64>, sum: u64| {
            PipelineReport {
                phases: vec![PhaseReport {
                    name: "collect".to_string(),
                    counters: vec![("collect.images.built".to_string(), counters)],
                    gauges: vec![("collect.depth".to_string(), gauge)],
                    timers: vec![("collect.build".to_string(), TimerSnapshot { nanos, spans })],
                    histograms: vec![(
                        "collect.sizes".to_string(),
                        HistogramSnapshot::from_counts(bounds, counts, sum),
                    )],
                }],
            }
        };
        let baseline = at(10, 3, 1_000, 2, vec![1, 0, 2], 9);
        let current = at(15, 7, 4_000, 5, vec![2, 1, 2], 12);
        let lookup = |name: &str| -> Option<&'static [u64]> {
            (name == "collect.sizes").then_some(&[1, 2, 4][..])
        };
        let delta = current.delta_since(&baseline, &lookup);
        let phase = delta.phase("collect").unwrap();
        assert_eq!(phase.counter_value("collect.images.built"), Some(5));
        // Gauges are point-in-time: the current value passes through.
        assert_eq!(phase.gauges[0].1, 7);
        assert_eq!(
            phase.timers[0].1,
            TimerSnapshot {
                nanos: 3_000,
                spans: 3
            }
        );
        assert_eq!(phase.histograms[0].1.counts, vec![1, 1, 0]);
        assert_eq!(phase.histograms[0].1.sum, 3);
        // Percentiles are recomputed from the delta counts, matching a
        // snapshot built directly from them.
        assert_eq!(
            phase.histograms[0].1,
            HistogramSnapshot::from_counts(bounds, vec![1, 1, 0], 3)
        );

        // A phase or entry absent from the baseline is kept whole, and a
        // shrunk counter saturates at zero instead of wrapping.
        let fresh = at(15, 7, 4_000, 5, vec![2, 1, 2], 12);
        let empty = PipelineReport::default();
        let whole = fresh.delta_since(&empty, &lookup);
        assert_eq!(
            whole
                .phase("collect")
                .unwrap()
                .counter_value("collect.images.built"),
            Some(15)
        );
        let shrunk = baseline.delta_since(&current, &lookup);
        assert_eq!(
            shrunk
                .phase("collect")
                .unwrap()
                .counter_value("collect.images.built"),
            Some(0)
        );
    }

    #[test]
    fn durations_render_in_sensible_units() {
        assert_eq!(render_duration(12), "12ns");
        assert_eq!(render_duration(1_200), "1.200µs");
        assert_eq!(render_duration(2_500_000), "2.500ms");
        assert_eq!(render_duration(3_000_000_000), "3.000s");
    }
}
