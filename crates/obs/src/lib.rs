//! encore-obs — zero-dependency pipeline observability: scoped spans,
//! atomic counters and gauges, fixed-bucket histograms, and per-phase
//! reports.
//!
//! The paper's evaluation is built from per-phase quantities — templates
//! instantiated, pairs pruned, rules surviving each filter, wall time per
//! stage (Tables 3 and 13 are exactly such numbers) — and tuning the
//! pipeline requires seeing them at runtime.  This crate provides the
//! instruments; each pipeline crate declares its own `static` metrics
//! (registry-free: there is no global list to race on) and exposes a
//! `phase_report()` snapshot, which `encore::obs::pipeline_report` rolls up
//! into a [`PipelineReport`] with text and JSON renderers.
//!
//! # Design constraints
//!
//! * **Disabled means free.**  The sink is a single global [`AtomicBool`];
//!   every instrument checks it with one relaxed load and does nothing else
//!   when it is off.  No allocation happens on either path — a [`Span`] is
//!   a stack guard holding an `Option<Instant>`, and counters are plain
//!   `AtomicU64`s (`tests/noop_overhead.rs` pins this down with a counting
//!   allocator).
//! * **Observation must not perturb.**  Instruments only ever *read*
//!   pipeline state; `RuleSet` output is byte-identical with the sink on
//!   and off, and counter/histogram totals are identical across worker
//!   counts (`tests/determinism.rs` at the workspace root proves both).
//!   Quantities that legitimately depend on scheduling — per-worker unit
//!   counts, busy time — are [`Gauge`]s and [`Timer`]s, never [`Counter`]s.
//! * **Names are stable.**  Metrics follow `phase.subsystem.metric`
//!   (DESIGN.md §9); reports key on those strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod event;
pub mod expose;
pub mod json;
pub mod profile;
mod report;
pub mod trace;

pub use report::{HistogramSnapshot, PhaseReport, PipelineReport, TimerSnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The global sink switch.  Off by default; every instrument is a no-op
/// (one relaxed load) until something turns it on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the sink is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the sink on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the sink off.  Already-recorded values are kept until `reset`.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable the sink if the `ENCORE_TRACE` environment variable is set to a
/// truthy value (`1`, `true`, `on`, `yes`; case-insensitive).  Returns
/// whether tracing ended up enabled.
pub fn enable_from_env() -> bool {
    if let Ok(value) = std::env::var("ENCORE_TRACE") {
        let v = value.to_ascii_lowercase();
        if matches!(v.as_str(), "1" | "true" | "on" | "yes") {
            enable();
        }
    }
    enabled()
}

/// A named monotonically increasing count of *work done* — entries parsed,
/// pairs evaluated, rules rejected.  Counters must be deterministic: the
/// same pipeline input yields the same totals regardless of worker count
/// or scheduling.  Scheduling-dependent quantities belong in a [`Gauge`].
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero.  `const`, so counters live in `static`s.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name (`phase.subsystem.metric`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`; a relaxed no-op while the sink is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named last-write-wins value for quantities that are *descriptive*
/// rather than cumulative — worker count, busiest-worker load.  Gauges may
/// legitimately differ between runs with different scheduling, so the
/// determinism tests exclude them.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A new gauge at zero.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the value; a no-op while the sink is disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to at least `v`; a no-op while disabled.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named accumulator of monotonic wall time, fed by [`Span`] guards.
/// Timers nest naturally — each span measures its own scope — and, like
/// gauges, their values are scheduling-dependent, so the determinism tests
/// exclude them.
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    nanos: AtomicU64,
    spans: AtomicU64,
}

impl Timer {
    /// A new timer at zero.
    pub const fn new(name: &'static str) -> Timer {
        Timer {
            name,
            nanos: AtomicU64::new(0),
            spans: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Open a scoped span; its duration is recorded when the guard drops.
    /// While the sink is disabled the guard holds no start time and the
    /// drop is free.  Neither path allocates.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            timer: self,
            started: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Record an externally measured duration (always, independent of the
    /// sink — [`Span`] has already made the enablement decision at open).
    fn record(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Number of recorded spans.
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Snapshot for reports.
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            nanos: self.total_nanos(),
            spans: self.spans(),
        }
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
        self.spans.store(0, Ordering::Relaxed);
    }
}

/// A scoped-timing guard returned by [`Timer::span`].  Spans nest: each
/// guard measures its own lexical scope against monotonic time.
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a Timer,
    started: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let elapsed = started.elapsed();
            // u64 nanoseconds hold ~584 years; saturate rather than wrap.
            let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            self.timer.record(nanos);
            // Feed the Chrome-trace ring buffer when span recording is on
            // (one extra relaxed load; free when tracing is off, and never
            // reached at all while the sink itself is disabled).
            trace::record_span(self.timer.name, started, elapsed);
        }
    }
}

/// The largest number of finite bucket bounds a [`Histogram`] may carry.
pub const MAX_BUCKETS: usize = 16;

/// Upper bounds indexing small nonnegative integers one-per-bucket —
/// convenient for per-shard or per-template histograms where the observed
/// value is an index below [`MAX_BUCKETS`].
pub const INDEX_BOUNDS: [u64; MAX_BUCKETS] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// A fixed-bucket histogram: at most [`MAX_BUCKETS`] inclusive upper
/// bounds plus one overflow bucket.  Bounds must be strictly increasing —
/// [`Histogram::new`] is `const` and panics at compile time otherwise.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS + 1],
    /// Exact running sum of every observed value — kept so Prometheus
    /// `_sum` exposition is precise rather than bucket-midpoint-estimated.
    /// Wrapping on overflow (observations are small work counts and
    /// millisecond durations; u64 holds ~584 years of nanoseconds).
    sum: AtomicU64,
}

impl Histogram {
    /// A new histogram over `bounds` (inclusive upper limits, strictly
    /// increasing, at most [`MAX_BUCKETS`] of them).
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Histogram {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        let mut i = 1;
        while i < bounds.len() {
            assert!(
                bounds[i - 1] < bounds[i],
                "histogram bounds must be strictly increasing"
            );
            i += 1;
        }
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            bounds,
            buckets: [ZERO; MAX_BUCKETS + 1],
            sum: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// The bucket index a value of `v` falls into for the given `bounds`:
    /// the first bound at least `v`, or the overflow index `bounds.len()`.
    /// Exposed for property tests — monotone in `v` by construction.
    pub fn bucket_index(bounds: &[u64], v: u64) -> usize {
        bounds
            .iter()
            .position(|&bound| v <= bound)
            .unwrap_or(bounds.len())
    }

    /// Record one observation of `v`; a no-op while the sink is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            let index = Self::bucket_index(self.bounds, v);
            self.buckets[index].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Exact sum of every observed value.  Reads `sum` and the buckets
    /// non-atomically with respect to each other, so a concurrent
    /// `observe` may be visible in one but not yet the other — snapshot
    /// after quiescing for exact pairing (reports do).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket counts, one per bound plus the trailing overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets[..=self.bounds.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// distribution.  See [`Histogram::quantile_from`] for the estimation
    /// semantics (linear interpolation within the fixed buckets, an
    /// upper-bound estimate).
    pub fn quantile(&self, q: f64) -> f64 {
        Self::quantile_from(self.bounds, &self.counts(), q)
    }

    /// Estimate a quantile from bucket `counts` over inclusive upper
    /// `bounds` (the [`Histogram::counts`] layout: one count per bound plus
    /// the trailing overflow bucket).
    ///
    /// The rank `q * total` is located in the cumulative counts and
    /// linearly interpolated between the containing bucket's edges, so the
    /// estimate is an **upper bound**: every observation in bucket `i` is
    /// at most `bounds[i]`, and the interpolation reaches that bound only
    /// when the rank is the bucket's last observation.  Ranks landing in
    /// the overflow bucket clamp to the largest finite bound (there the
    /// estimate is a *lower* bound, and is reported as such).  An empty
    /// distribution estimates 0.
    pub fn quantile_from(bounds: &[u64], counts: &[u64], q: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut below = 0.0;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Empty buckets neither contain ranks nor move `below`.
                continue;
            }
            let through = below + count as f64;
            if through >= rank {
                let Some(&hi) = bounds.get(i) else {
                    // Overflow bucket: no finite upper edge to interpolate
                    // toward; clamp to the largest finite bound.
                    return bounds.last().copied().unwrap_or(0) as f64;
                };
                let lo = if i == 0 { 0 } else { bounds[i - 1] };
                if rank <= below {
                    // The rank sits on this bucket's lower boundary — only
                    // reachable for `q = 0` (any earlier non-empty bucket
                    // would have claimed the rank): the estimate is the
                    // first non-empty bucket's lower edge, not a point
                    // inside it.
                    return lo as f64;
                }
                // A rank on the *upper* boundary (`rank == through`) is the
                // bucket's last observation: `frac` reaches exactly 1.0 and
                // the estimate is `hi` — the rank never skips into the next
                // bucket.
                let frac = ((rank - below) / count as f64).clamp(0.0, 1.0);
                return lo as f64 + (hi - lo) as f64 * frac;
            }
            below = through;
        }
        bounds.last().copied().unwrap_or(0) as f64
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Reset every bucket (and the running sum) to zero.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink flag is process-global and the test harness runs tests on
    // parallel threads, so every test that toggles it holds this gate.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counter_is_inert_when_disabled() {
        let _gate = gate();
        disable();
        static C: Counter = Counter::new("test.counter.inert");
        C.incr();
        C.add(41);
        assert_eq!(C.get(), 0);
        enable();
        C.incr();
        C.add(41);
        disable();
        C.incr(); // ignored again
        assert_eq!(C.get(), 42);
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let _gate = gate();
        static G: Gauge = Gauge::new("test.gauge.basic");
        enable();
        G.set(7);
        G.set_max(3);
        assert_eq!(G.get(), 7);
        G.set_max(11);
        assert_eq!(G.get(), 11);
        disable();
        G.set(99);
        assert_eq!(G.get(), 11);
        G.reset();
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn spans_accumulate_only_when_enabled() {
        let _gate = gate();
        static T: Timer = Timer::new("test.timer.spans");
        disable();
        drop(T.span());
        assert_eq!(T.spans(), 0);
        assert_eq!(T.total_nanos(), 0);
        enable();
        {
            let _outer = T.span();
            let _inner = T.span(); // nesting: both record on drop
        }
        disable();
        assert_eq!(T.spans(), 2);
        let snap = T.snapshot();
        assert_eq!(snap.spans, 2);
        assert_eq!(snap.nanos, T.total_nanos());
        T.reset();
        assert_eq!(T.snapshot(), TimerSnapshot::default());
    }

    #[test]
    fn histogram_buckets_values_and_overflows() {
        let _gate = gate();
        static H: Histogram = Histogram::new("test.hist.buckets", &[1, 10, 100]);
        enable();
        for v in [0, 1, 2, 10, 11, 100, 101, u64::MAX] {
            H.observe(v);
        }
        disable();
        assert_eq!(H.counts(), vec![2, 2, 2, 2]);
        assert_eq!(H.total(), 8);
        // Exact sum, wrapping on overflow: 0+1+2+10+11+100+101 = 225, and
        // the final u64::MAX observation wraps the total down by one.
        assert_eq!(H.sum(), 224);
        H.observe(5); // disabled: ignored
        assert_eq!(H.total(), 8);
        assert_eq!(H.sum(), 224);
        H.reset();
        assert_eq!(H.counts(), vec![0, 0, 0, 0]);
        assert_eq!(H.sum(), 0);
    }

    #[test]
    fn bucket_index_matches_inclusive_bounds() {
        let bounds = [0, 1, 2];
        assert_eq!(Histogram::bucket_index(&bounds, 0), 0);
        assert_eq!(Histogram::bucket_index(&bounds, 1), 1);
        assert_eq!(Histogram::bucket_index(&bounds, 2), 2);
        assert_eq!(Histogram::bucket_index(&bounds, 3), 3); // overflow
        assert_eq!(Histogram::bucket_index(&[], 0), 0); // all-overflow
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 20 observations: 10 in (0, 10], 10 in (20, 30].
        let bounds = [10, 20, 30];
        let counts = [10, 0, 10, 0];
        // Rank 10 is the last observation of the first bucket: its upper
        // bound exactly.
        assert_eq!(Histogram::quantile_from(&bounds, &counts, 0.5), 10.0);
        // Rank 15 is halfway through the third bucket (20..30].
        assert_eq!(Histogram::quantile_from(&bounds, &counts, 0.75), 25.0);
        // Rank 20 is that bucket's last observation.
        assert_eq!(Histogram::quantile_from(&bounds, &counts, 1.0), 30.0);
        // q=0 lands at the first nonempty bucket's lower edge.
        assert_eq!(Histogram::quantile_from(&bounds, &counts, 0.0), 0.0);
    }

    #[test]
    fn quantile_edge_cases_pin_the_bucket_boundaries() {
        // q=0 with *leading empty buckets*: the estimate is the first
        // non-empty bucket's lower edge (20, the previous bound) — not 0
        // and not a point inside the bucket.
        let bounds = [10, 20, 30];
        assert_eq!(Histogram::quantile_from(&bounds, &[0, 0, 8, 0], 0.0), 20.0);
        // A rank exactly on a bucket's upper boundary resolves inside that
        // bucket (frac = 1.0 → its bound), never skipping into the next
        // non-empty bucket: rank 10 of 16 is the first bucket's last
        // observation, so the estimate is 10, not a point in (20, 30].
        // (Total 16 keeps `q * total` exact in floating point.)
        let counts = [10, 0, 6, 0];
        assert_eq!(
            Histogram::quantile_from(&bounds, &counts, 10.0 / 16.0),
            10.0
        );
        // Just past the boundary the estimate moves into the next
        // non-empty bucket, continuously from its lower edge.
        let just_past = Histogram::quantile_from(&bounds, &counts, 10.5 / 16.0);
        assert!(
            (20.0..21.0).contains(&just_past),
            "expected lower reach of (20, 30], got {just_past}"
        );
        // A single-observation histogram: every q > 0 estimates the
        // observation's bucket bound; q = 0 its lower edge.
        assert_eq!(Histogram::quantile_from(&bounds, &[0, 1, 0, 0], 1.0), 20.0);
        assert_eq!(Histogram::quantile_from(&bounds, &[0, 1, 0, 0], 0.0), 10.0);
    }

    #[test]
    fn quantiles_clamp_in_the_overflow_bucket() {
        // 1 observation ≤ 10, 3 in the overflow bucket (> 10).
        let bounds = [10];
        let counts = [1, 3];
        assert_eq!(Histogram::quantile_from(&bounds, &counts, 0.99), 10.0);
        // Everything in overflow with no finite bound at all: estimate 0.
        assert_eq!(Histogram::quantile_from(&[], &[5], 0.5), 0.0);
        // Empty distribution.
        assert_eq!(Histogram::quantile_from(&bounds, &[0, 0], 0.5), 0.0);
    }

    #[test]
    fn quantile_reads_the_live_instrument() {
        let _gate = gate();
        static H: Histogram = Histogram::new("test.hist.quantile", &[1, 10, 100]);
        enable();
        for v in [0, 1, 5, 50] {
            H.observe(v);
        }
        disable();
        // Rank 2 of 4 closes the (0, 1] bucket.
        assert_eq!(H.quantile(0.5), 1.0);
        H.reset();
        assert_eq!(H.quantile(0.5), 0.0);
    }

    #[test]
    fn env_toggle_recognizes_truthy_values() {
        let _gate = gate();
        // Sequential within one test: env mutation is process-global.
        disable();
        std::env::remove_var("ENCORE_TRACE");
        assert!(!enable_from_env());
        std::env::set_var("ENCORE_TRACE", "0");
        assert!(!enable_from_env());
        std::env::set_var("ENCORE_TRACE", "1");
        assert!(enable_from_env());
        disable();
        std::env::set_var("ENCORE_TRACE", "on");
        assert!(enable_from_env());
        disable();
        std::env::remove_var("ENCORE_TRACE");
    }
}
