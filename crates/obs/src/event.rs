//! Leveled structured event log: request-scoped JSONL with a bounded
//! writer queue and drop accounting.
//!
//! Aggregate instruments (counters, histograms, the trace ring) say *how
//! much* work happened; the event log says *which request* paid for it.
//! Each event is one JSON line:
//!
//! ```text
//! {"ts":1234,"level":"info","event":"request.done","req":7,"fields":{...}}
//! ```
//!
//! * `ts` — microseconds since the log was installed, from the monotonic
//!   clock (never wall time, so lines sort correctly across NTP steps).
//! * `level` — `debug` / `info` / `warn` / `error`; lines below the
//!   configured minimum are not emitted.
//! * `event` — a stable dotted name (`request.done`, `watch.cycle`).
//! * `req` — the dense request id of the enclosing [`with_request`]
//!   scope; omitted outside any request.
//! * `fields` — event-specific key/value payload.
//!
//! # Design constraints
//!
//! * **Disabled means free.**  [`enabled`] is one relaxed load; call
//!   sites guard field construction with it so the disabled path neither
//!   allocates nor formats.
//! * **Emitters never block on I/O.**  [`emit`] pushes the rendered line
//!   onto a bounded in-memory queue; a dedicated writer thread drains it
//!   to the file.  A full queue *drops* the line and counts the drop —
//!   visible via [`health`], surfaced by `encore-serve`'s `stats` verb —
//!   rather than stalling the pipeline.
//! * **Observation must not perturb.**  Events only read pipeline state;
//!   the workspace determinism suite proves reports byte-identical with
//!   the log on and off.

use crate::json::Json;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Most rendered lines held in memory awaiting the writer thread; pushes
/// beyond this are dropped (and counted) instead of blocking.
pub const QUEUE_CAPACITY: usize = 4_096;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-batch, per-cycle detail).
    Debug,
    /// Normal request/cycle lifecycle events.
    Info,
    /// Unusual but handled conditions (slow requests, malformed input).
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// The lowercase name rendered into the `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::Debug => 0,
            Level::Info => 1,
            Level::Warn => 2,
            Level::Error => 3,
        }
    }
}

/// Whether the log is installed and accepting events.
static EVENTS_ON: AtomicBool = AtomicBool::new(false);
/// Minimum level admitted (rank of [`Level`]; default `Debug`).
static MIN_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Lines the writer thread has written to the file.
static WRITTEN: AtomicU64 = AtomicU64::new(0);
/// Lines dropped because the queue was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// The instant `ts` values count from, pinned at the first [`install`].
static ORIGIN: OnceLock<Instant> = OnceLock::new();

struct QueueInner {
    lines: VecDeque<String>,
    /// False once [`shutdown`] starts; the writer drains and exits.
    open: bool,
}

struct Queue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

static QUEUE: Queue = Queue {
    inner: Mutex::new(QueueInner {
        lines: VecDeque::new(),
        open: false,
    }),
    ready: Condvar::new(),
};

/// The writer thread's handle, joined by [`shutdown`].
static WRITER: Mutex<Option<JoinHandle<()>>> = Mutex::new(None);

thread_local! {
    /// The enclosing request id (0 = outside any request).
    static REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Whether the event log is installed; one relaxed load.  Guard field
/// construction with this to keep the disabled path allocation-free.
#[inline]
pub fn enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// Raise the minimum admitted level (default: `Debug`, i.e. everything).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level.rank(), Ordering::Relaxed);
}

/// Open `path` (append mode), start the writer thread, and start
/// accepting events.  Re-installing shuts the previous log down first;
/// the written/dropped accounting restarts per install.
///
/// # Errors
///
/// Propagates the file-open failure; the log stays uninstalled.
pub fn install(path: &Path) -> io::Result<()> {
    shutdown();
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let _ = ORIGIN.get_or_init(Instant::now);
    WRITTEN.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    {
        let mut inner = lock_queue();
        inner.lines.clear();
        inner.open = true;
    }
    let handle = std::thread::Builder::new()
        .name("encore-events".to_string())
        .spawn(move || writer_loop(file))?;
    *WRITER.lock().unwrap_or_else(|p| p.into_inner()) = Some(handle);
    EVENTS_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Install the log if the `ENCORE_EVENTS` environment variable names a
/// path.  Returns whether the log ended up installed.
pub fn install_from_env() -> bool {
    if enabled() {
        return true;
    }
    if let Ok(path) = std::env::var("ENCORE_EVENTS") {
        if !path.is_empty() && install(Path::new(&path)).is_ok() {
            return true;
        }
    }
    false
}

/// Stop accepting events, drain the queue to the file, and join the
/// writer thread.  Idempotent; a no-op when nothing is installed.
pub fn shutdown() {
    EVENTS_ON.store(false, Ordering::Relaxed);
    {
        let mut inner = lock_queue();
        inner.open = false;
    }
    QUEUE.ready.notify_all();
    let handle = WRITER.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(handle) = handle {
        let _ = handle.join();
    }
}

fn lock_queue() -> std::sync::MutexGuard<'static, QueueInner> {
    QUEUE.inner.lock().unwrap_or_else(|p| p.into_inner())
}

fn writer_loop(mut file: File) {
    loop {
        let line = {
            let mut inner = lock_queue();
            loop {
                if let Some(line) = inner.lines.pop_front() {
                    break Some(line);
                }
                if !inner.open {
                    break None;
                }
                inner = QUEUE.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
            }
        };
        match line {
            Some(line) => {
                // One write per line so `tail -f` (and the CI validator)
                // always sees whole lines; a failing disk drops the line
                // but keeps the service running.
                if writeln!(file, "{line}").is_ok() {
                    WRITTEN.fetch_add(1, Ordering::Relaxed);
                } else {
                    DROPPED.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

/// Run `f` with `id` as the current request: every event emitted inside
/// (on this thread) carries `"req": id`.  Scopes nest and restore on
/// exit, including across panics.
pub fn with_request<R>(id: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            REQUEST.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(REQUEST.with(|c| c.replace(id)));
    f()
}

/// The enclosing [`with_request`] id, if any.
pub fn current_request() -> Option<u64> {
    let id = REQUEST.with(Cell::get);
    (id != 0).then_some(id)
}

/// Emit one event.  `fields` become the `fields` object verbatim; the
/// line inherits the thread's [`with_request`] id.  A no-op (no
/// allocation beyond the caller's `fields`) while the log is off or the
/// level is below the configured minimum; a full queue drops the line
/// and counts it.
pub fn emit(level: Level, event: &str, fields: Vec<(String, Json)>) {
    if !enabled() || level.rank() < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let origin = *ORIGIN.get_or_init(Instant::now);
    let ts = u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut obj = vec![
        ("ts".to_string(), Json::Num(ts)),
        ("level".to_string(), Json::Str(level.as_str().to_string())),
        ("event".to_string(), Json::Str(event.to_string())),
    ];
    if let Some(req) = current_request() {
        obj.push(("req".to_string(), Json::Num(req)));
    }
    obj.push(("fields".to_string(), Json::Obj(fields)));
    let line = Json::Obj(obj).render();
    let mut inner = lock_queue();
    if !inner.open || inner.lines.len() >= QUEUE_CAPACITY {
        drop(inner);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    inner.lines.push_back(line);
    drop(inner);
    QUEUE.ready.notify_one();
}

/// Point-in-time log health, readable whether or not the log is
/// installed (all zeros before the first install).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventHealth {
    /// Lines the writer thread has written since install.
    pub written: u64,
    /// Lines dropped (full queue or failed write) since install.
    pub dropped: u64,
    /// Rendered lines currently awaiting the writer thread.
    pub queue_depth: u64,
}

/// Snapshot the log's health counters.
pub fn health() -> EventHealth {
    EventHealth {
        written: WRITTEN.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        queue_depth: lock_queue().lines.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The log is process-global; tests that install it serialize here.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn temp_log(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("encore-event-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn emit_is_inert_until_installed() {
        let _gate = gate();
        shutdown();
        emit(Level::Info, "nobody.listens", vec![]);
        assert!(!enabled());
    }

    #[test]
    fn lines_reach_the_file_in_order_with_request_ids() {
        let _gate = gate();
        let path = temp_log("order");
        install(&path).expect("install");
        emit(Level::Info, "first", vec![("n".to_string(), Json::Num(1))]);
        with_request(7, || {
            assert_eq!(current_request(), Some(7));
            emit(Level::Warn, "second", vec![]);
        });
        assert_eq!(current_request(), None);
        shutdown();
        let text = std::fs::read_to_string(&path).expect("log file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "log: {text}");
        let first = crate::json::parse(lines[0]).expect("line 0 parses");
        assert_eq!(first.get("event").and_then(Json::as_str), Some("first"));
        assert_eq!(first.get("level").and_then(Json::as_str), Some("info"));
        assert!(first.get("req").is_none());
        let second = crate::json::parse(lines[1]).expect("line 1 parses");
        assert_eq!(second.get("req").and_then(Json::as_u64), Some(7));
        assert_eq!(health().written, 2);
        assert_eq!(health().dropped, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn min_level_filters_and_restores() {
        let _gate = gate();
        let path = temp_log("level");
        install(&path).expect("install");
        set_min_level(Level::Warn);
        emit(Level::Debug, "dropped.by.level", vec![]);
        emit(Level::Error, "kept", vec![]);
        set_min_level(Level::Debug);
        shutdown();
        let text = std::fs::read_to_string(&path).expect("log file");
        assert_eq!(text.lines().count(), 1, "log: {text}");
        assert!(text.contains("\"kept\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn request_scopes_nest_and_unwind() {
        let _gate = gate();
        with_request(1, || {
            with_request(2, || assert_eq!(current_request(), Some(2)));
            assert_eq!(current_request(), Some(1));
            let caught = std::panic::catch_unwind(|| with_request(3, || panic!("boom")));
            assert!(caught.is_err());
            assert_eq!(current_request(), Some(1), "restored across the panic");
        });
        assert_eq!(current_request(), None);
    }
}
