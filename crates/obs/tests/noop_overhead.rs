//! The disabled sink must be free: an instrumented empty span, counter
//! bump, gauge write, or histogram observation allocates nothing.  A
//! counting wrapper around the system allocator pins that down — the
//! instruments are pure stack-and-atomic code on both the disabled and
//! enabled paths, so the allocation delta over the hot loop must be zero.

use encore_obs::{Counter, Gauge, Histogram, Timer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

static TIMER: Timer = Timer::new("test.noop.timer");
static COUNTER: Counter = Counter::new("test.noop.counter");
static GAUGE: Gauge = Gauge::new("test.noop.gauge");
static HISTOGRAM: Histogram = Histogram::new("test.noop.histogram", &[10, 100]);

fn hot_loop() {
    for i in 0..1_000u64 {
        let _span = TIMER.span();
        COUNTER.incr();
        COUNTER.add(i);
        GAUGE.set(i);
        GAUGE.set_max(i);
        HISTOGRAM.observe(i);
    }
}

// One test function (and one test in this binary overall, so no harness
// thread allocates concurrently with the measured window): both sink
// states must show a zero allocation delta.
#[test]
fn instruments_do_not_allocate_in_either_sink_state() {
    encore_obs::disable();
    let before_disabled = ALLOCATIONS.load(Ordering::SeqCst);
    hot_loop();
    let disabled_delta = ALLOCATIONS.load(Ordering::SeqCst) - before_disabled;
    assert_eq!(disabled_delta, 0, "disabled instruments allocated");

    encore_obs::enable();
    let before_enabled = ALLOCATIONS.load(Ordering::SeqCst);
    hot_loop();
    let enabled_delta = ALLOCATIONS.load(Ordering::SeqCst) - before_enabled;
    encore_obs::disable();
    assert_eq!(enabled_delta, 0, "enabled instruments allocated");

    // The enabled pass really recorded (the loop ran hot, not dead-code
    // eliminated).
    assert_eq!(TIMER.spans(), 1_000);
    assert_eq!(COUNTER.get(), 1_000 + (0..1_000).sum::<u64>());
    assert_eq!(HISTOGRAM.total(), 1_000);
}
