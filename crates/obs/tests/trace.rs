//! Integration tests for the Chrome-trace span recorder: ring bounding,
//! event shape, JSON loadability (via the crate's own parser), and the
//! per-phase summary lane.
//!
//! The recorder and the sink are global, so every test here serializes on
//! one mutex, re-arms recording itself, and never disables the sink.

use encore_obs::json::{self, Json};
use encore_obs::{trace, PhaseReport, PipelineReport, Timer, TimerSnapshot};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

static SPAN_TIMER: Timer = Timer::new("infer.trace_probe");

fn record_spans(n: usize) {
    for _ in 0..n {
        let _span = SPAN_TIMER.span();
    }
}

#[test]
fn recording_captures_complete_events_with_thread_ids() {
    let _gate = GATE.lock().unwrap();
    encore_obs::enable();
    trace::start_recording(64);
    record_spans(3);
    trace::stop_recording();
    let (events, dropped) = trace::snapshot();
    assert_eq!(events.len(), 3);
    assert_eq!(dropped, 0);
    for event in &events {
        assert_eq!(event.name, "infer.trace_probe");
        assert_eq!(event.category(), "infer");
        assert!(event.tid >= 1, "thread ids are dense from 1");
    }
    // Begin timestamps are non-decreasing for same-thread sequential spans.
    assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
}

#[test]
fn ring_is_bounded_and_reports_overwritten_events() {
    let _gate = GATE.lock().unwrap();
    encore_obs::enable();
    trace::start_recording(4);
    record_spans(10);
    trace::stop_recording();
    let (events, dropped) = trace::snapshot();
    assert_eq!(events.len(), 4, "ring keeps at most its capacity");
    assert_eq!(dropped, 6, "older events count as dropped");
    assert!(
        events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros),
        "snapshot is oldest-first even after wraparound"
    );
    // The export surfaces the drop count rather than hiding the gap.
    let parsed = json::parse(&trace::render_chrome_json(None)).expect("trace JSON parses");
    assert_eq!(
        parsed.get("encoreDroppedEvents").and_then(Json::as_u64),
        Some(6)
    );
}

#[test]
fn spans_outside_a_recording_window_are_not_captured() {
    let _gate = GATE.lock().unwrap();
    encore_obs::enable();
    trace::start_recording(16);
    trace::stop_recording();
    record_spans(5);
    let (events, dropped) = trace::snapshot();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
    assert!(!trace::recording());
}

#[test]
fn chrome_json_has_event_shape_and_phase_summary_lane() {
    let _gate = GATE.lock().unwrap();
    encore_obs::enable();
    trace::start_recording(64);
    record_spans(2);
    trace::stop_recording();

    // A report whose phases carry timer totals: the summary lane gets one
    // `phase:<name>` event per phase even for phases with no raw spans.
    let phase = |name: &str, nanos: u64| PhaseReport {
        name: name.to_string(),
        timers: vec![(format!("{name}.time"), TimerSnapshot { nanos, spans: 1 })],
        ..PhaseReport::default()
    };
    let report = PipelineReport {
        phases: vec![
            phase("collect", 5_000),
            phase("assemble", 7_000),
            phase("infer", 11_000),
            phase("stats", 0),
            phase("filter", 3_000),
            phase("detect", 2_000),
        ],
    };
    let rendered = trace::render_chrome_json(Some(&report));
    let parsed = json::parse(&rendered).expect("trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents is an array");
    // 6 phase-lane events + 2 raw spans.
    assert_eq!(events.len(), 8);
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event.get("tid").and_then(Json::as_u64).is_some());
        assert_eq!(event.get("pid").and_then(Json::as_u64), Some(1));
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "phase:collect",
        "phase:assemble",
        "phase:infer",
        "phase:stats",
        "phase:filter",
        "phase:detect",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Phase-lane events ride tid 0, durations in whole microseconds, laid
    // end to end (consecutive ts).
    let lane: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(0))
        .collect();
    assert_eq!(lane.len(), 6);
    assert_eq!(lane[0].get("ts").and_then(Json::as_u64), Some(0));
    assert_eq!(lane[0].get("dur").and_then(Json::as_u64), Some(5));
    assert_eq!(lane[1].get("ts").and_then(Json::as_u64), Some(5));
    assert_eq!(
        lane[2].get("cat").and_then(Json::as_str),
        Some("infer"),
        "phase lane categorizes by phase name"
    );
}
