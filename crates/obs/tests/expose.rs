//! Integration tests for the Prometheus exposition surface: a golden-file
//! check pinning the exact rendered text for a fixed report, the grammar
//! validator over a real post-run sink, and raw-socket coverage of the
//! [`MetricsServer`] routes.
//!
//! Regenerate the golden after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p encore-obs --test expose`.

use encore_obs::expose::{self, MetricsServer, Readiness};
use encore_obs::{Counter, Histogram, PhaseReport, PipelineReport, Timer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const GOLDEN: &str = include_str!("golden/exposition.txt");

/// A fixed report exercising every instrument kind plus a sanitization
/// collision (`pairs-scored` vs `pairs_scored`).
fn fixture_report() -> PipelineReport {
    let infer = PhaseReport {
        name: "infer".to_string(),
        counters: vec![
            ("infer.pairs.evaluated".to_string(), 4_555),
            ("infer.pairs-scored".to_string(), 7),
            ("infer.pairs_scored".to_string(), 9),
        ],
        gauges: vec![("infer.pool.workers".to_string(), 4)],
        timers: vec![
            (
                "infer.time".to_string(),
                encore_obs::TimerSnapshot {
                    nanos: 1_500_000_000,
                    spans: 3,
                },
            ),
            // Beyond f64's 53-bit mantissa: pins the integer-exact seconds
            // rendering (an `as f64 / 1e9` render would end ...992).
            (
                "infer.lifetime".to_string(),
                encore_obs::TimerSnapshot {
                    nanos: 9_007_199_254_740_993,
                    spans: 41,
                },
            ),
        ],
        histograms: Vec::new(),
    };
    let detect = PhaseReport {
        name: "detect".to_string(),
        histograms: vec![(
            "detect.checks_per_target".to_string(),
            encore_obs::HistogramSnapshot::from_counts(&[1, 2, 4], vec![1, 0, 2, 1], 19),
        )],
        ..PhaseReport::default()
    };
    PipelineReport {
        phases: vec![infer, detect],
    }
}

fn fixture_bounds(name: &str) -> Option<&'static [u64]> {
    match name {
        "detect.checks_per_target" => Some(&[1, 2, 4]),
        _ => None,
    }
}

#[test]
fn rendered_exposition_matches_the_golden_file() {
    let rendered = expose::render(&fixture_report(), &fixture_bounds);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.txt");
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "exposition format drifted; run with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_file_itself_passes_the_grammar_validator() {
    expose::validate(GOLDEN).expect("golden exposition is grammatical");
}

static LIVE_EVENTS: Counter = Counter::new("expose_probe.events");
static LIVE_DEPTH: Histogram = Histogram::new("expose_probe.depth", &encore_obs::INDEX_BOUNDS);
static LIVE_TIME: Timer = Timer::new("expose_probe.time");

#[test]
fn exposition_over_a_live_sink_validates_and_names_are_namespaced() {
    encore_obs::enable();
    LIVE_EVENTS.add(12);
    LIVE_DEPTH.observe(3);
    {
        let _span = LIVE_TIME.span();
    }
    // Snapshot the live instruments into a report exactly as a phase does,
    // then render it as a scrape would.
    let probe = PhaseReport::new("probe")
        .counter(&LIVE_EVENTS)
        .timer(&LIVE_TIME)
        .histogram(&LIVE_DEPTH);
    let report = PipelineReport {
        phases: vec![probe],
    };
    let text = expose::render(&report, &|_| None);
    expose::validate(&text).expect("live exposition is grammatical");
    assert!(text.contains("encore_expose_probe_events_total 12"));
    assert!(text.contains("encore_expose_probe_time_seconds_total"));
    assert!(text.contains("encore_expose_probe_time_spans_total 1"));
    assert!(text.contains("encore_expose_probe_depth_count 1"));
    assert!(
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .all(|l| l.starts_with("encore_")),
        "every sample lives in the encore_ namespace"
    );
}

/// One raw HTTP/1.0 round-trip: returns (status line, body).
fn http_request(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"))
}

#[test]
fn metrics_server_routes_and_readiness_flip() {
    let readiness = Arc::new(Readiness::new());
    let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&readiness), || {
        expose::render(&fixture_report(), &fixture_bounds)
    })
    .expect("bind port 0");
    let addr = server.addr();

    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    expose::validate(&body).expect("served exposition is grammatical");
    assert_eq!(body, expose::render(&fixture_report(), &fixture_bounds));

    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Not ready until the daemon says so; flips live without a restart.
    let (status, body) = get(addr, "/readyz");
    assert!(status.contains("503"), "{status}");
    assert_eq!(body, "not ready\n");
    readiness.set(true);
    let (status, body) = get(addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ready\n");
    readiness.set(false);
    let (status, _) = get(addr, "/readyz");
    assert!(status.contains("503"), "{status}");

    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_request(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert!(status.contains("405"), "{status}");
}

#[test]
fn status_closure_drives_readyz_with_a_per_component_body() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let healthy = Arc::new(AtomicBool::new(false));
    let probe = Arc::clone(&healthy);
    let server = MetricsServer::start_with_status(
        "127.0.0.1:0",
        move || {
            let ok = probe.load(Ordering::Relaxed);
            let body = format!(
                "mysql ready\nweb {}\n",
                if ok { "ready" } else { "not-ready" }
            );
            (ok, body)
        },
        String::new,
    )
    .expect("bind port 0");
    let addr = server.addr();

    // Not ready: 503, and the body names the sick component.
    let (status, body) = get(addr, "/readyz");
    assert!(status.contains("503"), "{status}");
    assert_eq!(body, "mysql ready\nweb not-ready\n");
    healthy.store(true, Ordering::Relaxed);
    let (status, body) = get(addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "mysql ready\nweb ready\n");
}

#[test]
fn metrics_server_stop_is_idempotent_and_frees_the_port() {
    let readiness = Arc::new(Readiness::new());
    let mut server = MetricsServer::start("127.0.0.1:0", readiness, String::new).expect("bind");
    let addr = server.addr();
    server.stop();
    server.stop();
    drop(server);
    // The port is free again: a second server can bind it.
    let again = MetricsServer::start(&addr.to_string(), Arc::new(Readiness::new()), String::new);
    assert!(again.is_ok(), "rebinding the freed port: {:?}", again.err());
}
