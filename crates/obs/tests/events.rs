//! Golden-file shape test for the JSONL event log: a fixed emission
//! sequence must render byte-identically (after timestamp
//! normalization) to `golden/events.jsonl`, and every line must satisfy
//! the event grammar (`ts`/`level`/`event`/`fields`, `req` only inside
//! a request scope).
//!
//! Regenerate the golden after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p encore-obs --test events`.

use encore_obs::event::{self, Level};
use encore_obs::json::{self, Json};

const GOLDEN: &str = include_str!("golden/events.jsonl");

/// Zero the monotonic `ts` field so the comparison pins shape, not
/// timing.  Everything else — key order included — must match exactly.
fn normalize(line: &str) -> String {
    let Json::Obj(pairs) = json::parse(line).expect("event line parses") else {
        panic!("event line is not an object: {line}");
    };
    let pairs = pairs
        .into_iter()
        .map(|(key, value)| {
            if key == "ts" {
                (key, Json::Num(0))
            } else {
                (key, value)
            }
        })
        .collect();
    Json::Obj(pairs).render()
}

/// The grammar every consumer may rely on: `ts` first, then `level`
/// (a known name), `event` (non-empty dotted), optional `req` (> 0),
/// `fields` object last.
fn validate_line(line: &str) {
    let Json::Obj(pairs) = json::parse(line).expect("event line parses") else {
        panic!("event line is not an object: {line}");
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    match keys.as_slice() {
        ["ts", "level", "event", "fields"] | ["ts", "level", "event", "req", "fields"] => {}
        other => panic!("unexpected key sequence {other:?} in {line}"),
    }
    let value = Json::Obj(pairs);
    assert!(value.get("ts").and_then(Json::as_u64).is_some(), "{line}");
    let level = value.get("level").and_then(Json::as_str).expect("level");
    assert!(
        ["debug", "info", "warn", "error"].contains(&level),
        "{line}"
    );
    let name = value.get("event").and_then(Json::as_str).expect("event");
    assert!(!name.is_empty(), "{line}");
    if let Some(req) = value.get("req") {
        assert!(req.as_u64().is_some_and(|id| id > 0), "{line}");
    }
    assert!(matches!(value.get("fields"), Some(Json::Obj(_))), "{line}");
}

#[test]
fn event_log_lines_match_the_golden_shape() {
    let path = std::env::temp_dir().join(format!("encore-events-golden-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    event::install(&path).expect("install event log");

    // One representative of every event family the stack emits.
    event::emit(
        Level::Debug,
        "detect.fleet",
        vec![
            ("app".to_string(), Json::Str("mysql".to_string())),
            ("systems".to_string(), Json::Num(20)),
        ],
    );
    event::with_request(1, || {
        event::emit(
            Level::Info,
            "request.done",
            vec![
                ("verb".to_string(), Json::Str("check".to_string())),
                ("status".to_string(), Json::Str("ok".to_string())),
                ("parse_us".to_string(), Json::Num(41)),
                ("queue_us".to_string(), Json::Num(12)),
                ("check_us".to_string(), Json::Num(5_230)),
                ("respond_us".to_string(), Json::Num(88)),
                ("total_us".to_string(), Json::Num(5_371)),
            ],
        );
    });
    event::with_request(2, || {
        event::emit(
            Level::Warn,
            "request.slow",
            vec![
                ("verb".to_string(), Json::Str("check".to_string())),
                ("status".to_string(), Json::Str("ok".to_string())),
                ("parse_us".to_string(), Json::Num(50)),
                ("queue_us".to_string(), Json::Num(91_002)),
                ("check_us".to_string(), Json::Num(104_551)),
                ("respond_us".to_string(), Json::Num(73)),
                ("total_us".to_string(), Json::Num(195_676)),
                ("threshold_us".to_string(), Json::Num(100_000)),
            ],
        );
    });
    event::emit(
        Level::Info,
        "watch.cycle",
        vec![
            ("cycle".to_string(), Json::Num(3)),
            ("added".to_string(), Json::Num(1)),
            ("changed".to_string(), Json::Num(0)),
            ("removed".to_string(), Json::Num(0)),
            ("rechecked".to_string(), Json::Num(1)),
            ("warnings".to_string(), Json::Num(2)),
            ("tracked".to_string(), Json::Num(5)),
            ("reloaded".to_string(), Json::Bool(false)),
            ("duration_us".to_string(), Json::Num(2_741)),
        ],
    );
    event::shutdown();

    let text = std::fs::read_to_string(&path).expect("read event log");
    let _ = std::fs::remove_file(&path);
    for line in text.lines() {
        validate_line(line);
    }
    let normalized: String = text.lines().map(normalize).fold(String::new(), |mut s, l| {
        s.push_str(&l);
        s.push('\n');
        s
    });

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/events.jsonl");
        std::fs::write(golden, &normalized).expect("write golden");
        return;
    }
    assert_eq!(
        normalized, GOLDEN,
        "event line shape drifted; run with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_file_itself_passes_the_grammar_validator() {
    for line in GOLDEN.lines() {
        validate_line(line);
    }
    // Timestamps were normalized at capture; the request ids were not —
    // the golden run's scopes are pinned too.
    let reqs: Vec<u64> = GOLDEN
        .lines()
        .filter_map(|l| json::parse(l).ok()?.get("req")?.as_u64())
        .collect();
    assert_eq!(reqs, vec![1, 2]);
}
