//! Property tests for histogram bucketing: the bucket index must be
//! monotone in the observed value for *any* strictly increasing bounds,
//! every observation must land in exactly one bucket whose bound brackets
//! it, and the exact running sum must track observations and stay
//! monotone (it feeds Prometheus `_sum`).

use encore_obs::Histogram;
use proptest::prelude::*;

/// Dedicated instrument for the sum property below — shared only within
/// that single (sequential) proptest body.
static SUM_PROBE: Histogram = Histogram::new("prop.sum_probe", &encore_obs::INDEX_BOUNDS);

/// Build strictly increasing bounds from arbitrary u64 seeds by
/// sort + dedup — every generated case is a valid bounds slice.
fn bounds_from(seeds: Vec<u64>) -> Vec<u64> {
    let mut bounds = seeds;
    bounds.sort_unstable();
    bounds.dedup();
    bounds.truncate(encore_obs::MAX_BUCKETS);
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_index_is_monotone_in_the_value(
        s0 in 0u64..1_000, s1 in 0u64..1_000,
        a in 0u64..2_000, b in 0u64..2_000,
    ) {
        let bounds = bounds_from(vec![s0, s1, s0.wrapping_mul(31) % 1_000]);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (lo_idx, hi_idx) = (
            Histogram::bucket_index(&bounds, lo),
            Histogram::bucket_index(&bounds, hi),
        );
        prop_assert!(
            lo_idx <= hi_idx,
            "bucket_index not monotone: {lo}→{lo_idx} vs {hi}→{hi_idx} over {bounds:?}"
        );
    }

    #[test]
    fn quantile_is_monotone_in_q_and_bounded(
        s0 in 1u64..1_000, s1 in 1u64..1_000, s2 in 1u64..1_000,
        c0 in 0u64..50, c1 in 0u64..50, c2 in 0u64..50, c3 in 0u64..50,
        qa in 0u32..=100, qb in 0u32..=100,
    ) {
        let bounds = bounds_from(vec![s0, s1, s2]);
        let mut counts = vec![c0, c1, c2, c3];
        counts.truncate(bounds.len() + 1);
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let lo = Histogram::quantile_from(&bounds, &counts, f64::from(lo_q) / 100.0);
        let hi = Histogram::quantile_from(&bounds, &counts, f64::from(hi_q) / 100.0);
        prop_assert!(
            lo <= hi,
            "quantile not monotone: q{lo_q}→{lo} vs q{hi_q}→{hi} over {bounds:?} {counts:?}"
        );
        // Estimates never exceed the largest finite bound.
        let max_bound = bounds.last().copied().unwrap_or(0) as f64;
        prop_assert!(hi <= max_bound);
    }

    #[test]
    fn quantile_zero_is_the_first_nonempty_buckets_lower_edge(
        s0 in 1u64..1_000, s1 in 1u64..1_000, s2 in 1u64..1_000,
        c0 in 0u64..50, c1 in 0u64..50, c2 in 0u64..50, c3 in 0u64..50,
    ) {
        let bounds = bounds_from(vec![s0, s1, s2]);
        let mut counts = vec![c0, c1, c2, c3];
        counts.truncate(bounds.len() + 1);
        let q0 = Histogram::quantile_from(&bounds, &counts, 0.0);
        let first = counts.iter().position(|&c| c > 0);
        let expected = match first {
            None => 0.0, // empty distribution
            Some(0) => 0.0,
            // Lower edge of the first non-empty bucket; overflow clamps to
            // the largest finite bound.
            Some(i) if i < bounds.len() => bounds[i - 1] as f64,
            Some(_) => bounds.last().copied().unwrap_or(0) as f64,
        };
        prop_assert_eq!(
            q0, expected,
            "q=0 over {:?} {:?}", bounds, counts
        );
    }

    #[test]
    fn boundary_ranks_stay_in_their_bucket(
        s0 in 1u64..1_000, s1 in 1u64..1_000, s2 in 1u64..1_000,
        c0 in 0u64..50, c1 in 0u64..50, c2 in 0u64..50, c3 in 0u64..50,
        pick in 0usize..4,
    ) {
        let bounds = bounds_from(vec![s0, s1, s2]);
        let mut counts = vec![c0, c1, c2, c3];
        counts.truncate(bounds.len() + 1);
        let total: u64 = counts.iter().sum();
        let i = pick.min(counts.len() - 1);
        if total == 0 || counts[i] == 0 || i >= bounds.len() {
            return; // skip: no boundary to probe in this case
        }
        // q chosen so the rank is exactly the cumulative count through
        // bucket `i` — the bucket's last observation.  The estimate must be
        // that bucket's own upper bound, never a value beyond it.  Restrict
        // to cases where `q * total` round-trips exactly, so the rank
        // really does sit on the boundary the property is about.
        let through: u64 = counts[..=i].iter().sum();
        let q = through as f64 / total as f64;
        if q * total as f64 != through as f64 {
            return; // skip: q*total would not round-trip onto the boundary
        }
        let est = Histogram::quantile_from(&bounds, &counts, q);
        prop_assert_eq!(
            est, bounds[i] as f64,
            "rank {} of {} over {:?} {:?}", through, total, bounds, counts
        );
    }

    #[test]
    fn histogram_sum_tracks_observations_exactly_and_monotonically(
        v0 in 0u64..1_000, v1 in 0u64..1_000, v2 in 0u64..1_000,
        v3 in 0u64..1_000, extra in 0u64..1_000,
    ) {
        // The sink must be on for instruments to record; never disabled
        // again here, so parallel cases in this binary are unaffected.
        encore_obs::enable();
        SUM_PROBE.reset();
        let values = [v0, v1, v2, v3];
        for v in values {
            SUM_PROBE.observe(v);
        }
        let expected: u64 = values.iter().sum();
        prop_assert_eq!(SUM_PROBE.sum(), expected, "sum is the exact value total");
        let count: u64 = SUM_PROBE.counts().iter().sum();
        prop_assert_eq!(count, values.len() as u64, "every observation counted once");
        // Monotone: a further observation never decreases the sum (these
        // values are far from the wrapping edge).
        let before = SUM_PROBE.sum();
        SUM_PROBE.observe(extra);
        prop_assert!(SUM_PROBE.sum() >= before);
        prop_assert_eq!(SUM_PROBE.sum(), before + extra);
    }

    #[test]
    fn bucket_index_brackets_the_value(
        s0 in 0u64..1_000, s1 in 0u64..1_000, s2 in 0u64..1_000,
        v in 0u64..2_000,
    ) {
        let bounds = bounds_from(vec![s0, s1, s2]);

        let index = Histogram::bucket_index(&bounds, v);
        prop_assert!(index <= bounds.len());
        if index < bounds.len() {
            // In a finite bucket: at most its bound, above the previous.
            prop_assert!(v <= bounds[index]);
        }
        if index > 0 {
            prop_assert!(v > bounds[index - 1]);
        }
    }
}

#[test]
fn shipped_bounds_are_strictly_monotone() {
    // `Histogram::new` is const and panics on bad bounds, so any histogram
    // that compiles is sound; double-check the shared constant anyway.
    let bounds = encore_obs::INDEX_BOUNDS;
    assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(bounds.len(), encore_obs::MAX_BUCKETS);
}
