//! Account database: the `/etc/passwd` and `/etc/group` stand-ins.

use std::collections::BTreeMap;

/// One `/etc/passwd` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name.
    pub name: String,
    /// Numeric user id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
}

impl User {
    /// Create a user record.
    pub fn new(name: impl Into<String>, uid: u32, gid: u32) -> User {
        User {
            name: name.into(),
            uid,
            gid,
        }
    }

    /// Whether the user is an administrator (uid 0).
    pub fn is_admin(&self) -> bool {
        self.uid == 0
    }
}

/// One `/etc/group` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group name.
    pub name: String,
    /// Numeric group id.
    pub gid: u32,
    /// Member user names.
    pub members: Vec<String>,
}

impl Group {
    /// Create a group record.
    pub fn new(name: impl Into<String>, gid: u32, members: &[&str]) -> Group {
        Group {
            name: name.into(),
            gid,
            members: members.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// The account database of one system image.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Accounts {
    users: BTreeMap<String, User>,
    groups: BTreeMap<String, Group>,
    next_gid: u32,
}

impl Accounts {
    /// Create an empty database.
    pub fn new() -> Accounts {
        Accounts {
            next_gid: 1000,
            ..Accounts::default()
        }
    }

    /// Add (or replace) a user.
    pub fn add_user(&mut self, user: User) {
        self.users.insert(user.name.clone(), user);
    }

    /// Add (or replace) a group.
    pub fn add_group(&mut self, group: Group) {
        self.groups.insert(group.name.clone(), group);
    }

    /// Ensure a group with this name exists (allocating a gid if new).
    pub fn ensure_group(&mut self, name: &str) {
        if !self.groups.contains_key(name) {
            self.next_gid += 1;
            let gid = self.next_gid;
            self.add_group(Group::new(name, gid, &[]));
        }
    }

    /// Add `user` to `group` (both must already exist by name; the group is
    /// created if missing).
    pub fn add_membership(&mut self, user: &str, group: &str) {
        self.ensure_group(group);
        let g = self.groups.get_mut(group).expect("ensured above");
        if !g.members.iter().any(|m| m == user) {
            g.members.push(user.to_string());
        }
    }

    /// Look up a user by name.
    pub fn user(&self, name: &str) -> Option<&User> {
        self.users.get(name)
    }

    /// Look up a group by name.
    pub fn group(&self, name: &str) -> Option<&Group> {
        self.groups.get(name)
    }

    /// Whether `user` is a member of `group` (explicit membership or the
    /// user's primary group).
    pub fn is_member(&self, user: &str, group: &str) -> bool {
        if let Some(g) = self.groups.get(group) {
            if g.members.iter().any(|m| m == user) {
                return true;
            }
            if let Some(u) = self.users.get(user) {
                return u.gid == g.gid;
            }
        }
        false
    }

    /// All groups `user` belongs to.
    pub fn groups_of(&self, user: &str) -> Vec<&str> {
        self.groups
            .values()
            .filter(|g| self.is_member(user, &g.name))
            .map(|g| g.name.as_str())
            .collect()
    }

    /// Whether the user is in the root group (`user.isRootGroup`, Table 5a).
    pub fn in_root_group(&self, user: &str) -> bool {
        self.is_member(user, "root")
    }

    /// Iterate user names (`Acct.UserList`, Table 7).
    pub fn user_list(&self) -> impl Iterator<Item = &str> {
        self.users.keys().map(String::as_str)
    }

    /// Iterate group names (`Acct.GroupList`, Table 7).
    pub fn group_list(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Accounts {
        let mut a = Accounts::new();
        a.add_user(User::new("root", 0, 0));
        a.add_group(Group::new("root", 0, &["root"]));
        a.add_user(User::new("mysql", 27, 27));
        a.add_group(Group::new("mysql", 27, &["mysql"]));
        a.add_user(User::new("apache", 48, 48));
        a.add_group(Group::new("apache", 48, &[]));
        a
    }

    #[test]
    fn membership_explicit_and_primary() {
        let a = db();
        assert!(a.is_member("mysql", "mysql"));
        // apache group has no explicit members but gid 48 is apache's primary
        assert!(a.is_member("apache", "apache"));
        assert!(!a.is_member("mysql", "apache"));
    }

    #[test]
    fn admin_detection() {
        let a = db();
        assert!(a.user("root").unwrap().is_admin());
        assert!(!a.user("mysql").unwrap().is_admin());
    }

    #[test]
    fn root_group_detection() {
        let a = db();
        assert!(a.in_root_group("root"));
        assert!(!a.in_root_group("mysql"));
    }

    #[test]
    fn ensure_group_is_idempotent() {
        let mut a = db();
        a.ensure_group("www");
        let gid = a.group("www").unwrap().gid;
        a.ensure_group("www");
        assert_eq!(a.group("www").unwrap().gid, gid);
    }

    #[test]
    fn groups_of_lists_all() {
        let mut a = db();
        a.add_membership("mysql", "backup");
        let gs = a.groups_of("mysql");
        assert!(gs.contains(&"mysql"));
        assert!(gs.contains(&"backup"));
    }
}
