//! Collection-phase metrics: what the crawler (here: the builder-based
//! corpus generator) gathered per system image.
//!
//! All metrics are [`Counter`]s or a build-time [`Timer`]; counts are taken
//! from the finished image at [`build`](crate::SystemImageBuilder::build),
//! so they are deterministic for a given corpus regardless of builder call
//! order.

use encore_obs::{Counter, PhaseReport, Timer};

/// Images finished via `SystemImageBuilder::build`.
pub static IMAGES_BUILT: Counter = Counter::new("collect.images.built");
/// VFS nodes (directories, files, symlinks) across built images.
pub static VFS_NODES: Counter = Counter::new("collect.vfs.nodes");
/// User accounts across built images.
pub static USERS: Counter = Counter::new("collect.accounts.users");
/// Groups across built images.
pub static GROUPS: Counter = Counter::new("collect.accounts.groups");
/// Registered service ports across built images.
pub static SERVICES: Counter = Counter::new("collect.services.registered");
/// Environment variables across built (running) images.
pub static ENV_VARS: Counter = Counter::new("collect.env.vars");
/// Wall time spent in `build` finalization.
pub static BUILD_TIME: Timer = Timer::new("collect.build.time");

/// Snapshot of the collection phase.
pub fn phase_report() -> PhaseReport {
    PhaseReport::new("collect")
        .counter(&IMAGES_BUILT)
        .counter(&VFS_NODES)
        .counter(&USERS)
        .counter(&GROUPS)
        .counter(&SERVICES)
        .counter(&ENV_VARS)
        .timer(&BUILD_TIME)
}

/// Reset every collection-phase instrument.
pub fn reset() {
    IMAGES_BUILT.reset();
    VFS_NODES.reset();
    USERS.reset();
    GROUPS.reset();
    SERVICES.reset();
    ENV_VARS.reset();
    BUILD_TIME.reset();
}
