//! Security-module state: SELinux / AppArmor (`OS.SEStatus`, Table 5b).
//!
//! Real-world case #4 of Table 9 (MySQL data-writing error caused by an
//! undesired AppArmor profile) requires modelling whether a mandatory-access
//! module confines a path.

/// Which security module is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityModule {
    /// No MAC module.
    None,
    /// SELinux.
    SeLinux,
    /// AppArmor.
    AppArmor,
}

/// Security-module state of an image.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityState {
    module: SecurityModule,
    enforcing: bool,
    confined_paths: Vec<String>,
}

impl Default for SecurityState {
    fn default() -> Self {
        SecurityState {
            module: SecurityModule::None,
            enforcing: false,
            confined_paths: Vec::new(),
        }
    }
}

impl SecurityState {
    /// No security module.
    pub fn disabled() -> SecurityState {
        SecurityState::default()
    }

    /// An enforcing module with a set of confined path prefixes.
    pub fn enforcing(module: SecurityModule, confined: &[&str]) -> SecurityState {
        SecurityState {
            module,
            enforcing: true,
            confined_paths: confined.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The active module.
    pub fn module(&self) -> SecurityModule {
        self.module
    }

    /// Whether the module is enforcing.
    pub fn is_enforcing(&self) -> bool {
        self.enforcing && self.module != SecurityModule::None
    }

    /// Whether writes to `path` are denied by the module (i.e. the path is
    /// outside every allowed profile prefix while the module enforces).
    ///
    /// AppArmor profiles whitelist directories; a `datadir` moved outside
    /// `/var/lib/mysql` is denied even with correct Unix permissions — the
    /// exact failure of real-world case #4.
    pub fn denies_write(&self, path: &str) -> bool {
        self.is_enforcing()
            && !self
                .confined_paths
                .iter()
                .any(|p| path.starts_with(p.as_str()))
    }

    /// Status string for the `OS.SEStatus` attribute.
    pub fn status_str(&self) -> &'static str {
        match (self.module, self.enforcing) {
            (SecurityModule::None, _) => "disabled",
            (_, true) => "enforcing",
            (_, false) => "permissive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_denies_nothing() {
        let s = SecurityState::disabled();
        assert!(!s.denies_write("/anywhere"));
        assert_eq!(s.status_str(), "disabled");
    }

    #[test]
    fn enforcing_denies_outside_profile() {
        let s = SecurityState::enforcing(SecurityModule::AppArmor, &["/var/lib/mysql"]);
        assert!(!s.denies_write("/var/lib/mysql/ibdata1"));
        assert!(s.denies_write("/data/mysql"));
        assert_eq!(s.status_str(), "enforcing");
    }
}
