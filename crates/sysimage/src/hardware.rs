//! Hardware specification — the `/proc` stand-in (Table 5b / Table 7).

/// Hardware description of a *running* instance.
///
/// Dormant images (the EC2 training corpus) carry no hardware spec; see
/// [`crate::SystemImage::hardware`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareSpec {
    /// Number of CPU hardware threads (`CPU.Threads` / `HW.Cores`).
    pub cpu_threads: u32,
    /// CPU frequency in MHz (`CPU.Freq`).
    pub cpu_freq_mhz: u32,
    /// Physical memory in bytes (`MemSize` / `HW.Memory`).
    pub mem_bytes: u64,
    /// Available disk space in bytes (`HDD.AvailSpace` / `HW.DiskSize`).
    pub disk_avail_bytes: u64,
}

impl HardwareSpec {
    /// A small cloud instance (1 vCPU, 1.7 GiB — the classic EC2 m1.small).
    pub fn small() -> HardwareSpec {
        HardwareSpec {
            cpu_threads: 1,
            cpu_freq_mhz: 2000,
            mem_bytes: 17 << 27, // 1.7 GiB
            disk_avail_bytes: 160 << 30,
        }
    }

    /// A large instance (8 threads, 16 GiB — the paper's mining testbed).
    pub fn large() -> HardwareSpec {
        HardwareSpec {
            cpu_threads: 8,
            cpu_freq_mhz: 2600,
            mem_bytes: 16 << 30,
            disk_avail_bytes: 1 << 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(HardwareSpec::small().mem_bytes < HardwareSpec::large().mem_bytes);
        assert!(HardwareSpec::small().cpu_threads < HardwareSpec::large().cpu_threads);
    }
}
