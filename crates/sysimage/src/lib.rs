//! Simulated system images — the environment substrate.
//!
//! The paper's data collector reads live system state: file-system metadata,
//! `/etc/passwd`, `/etc/group`, `/etc/services`, environment variables,
//! hardware specifications and security-module status (Tables 5b and 7).
//! We do not have Amazon EC2 images, so this crate implements the closest
//! synthetic equivalent: an in-memory [`SystemImage`] holding exactly the
//! structured metadata EnCore consumes, exercising the same verification and
//! augmentation code paths (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use encore_sysimage::{FileKind, SystemImage};
//!
//! let img = SystemImage::builder("demo")
//!     .user("mysql", 27, &["mysql"])
//!     .dir("/var/lib/mysql", "mysql", "mysql", 0o700)
//!     .file("/etc/mysql/my.cnf", "root", "root", 0o644, "[mysqld]\n")
//!     .build();
//! let meta = img.vfs().metadata("/var/lib/mysql").unwrap();
//! assert_eq!(meta.kind, FileKind::Directory);
//! assert_eq!(meta.owner, "mysql");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounts;
pub mod hardware;
pub mod obs;
pub mod security;
pub mod services;
pub mod vfs;

pub use accounts::{Accounts, Group, User};
pub use hardware::HardwareSpec;
pub use security::{SecurityModule, SecurityState};
pub use services::Services;
pub use vfs::{FileKind, FileMeta, Vfs};

use std::collections::BTreeMap;

/// A complete simulated system image: everything the data collector gathers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemImage {
    id: String,
    vfs: Vfs,
    accounts: Accounts,
    services: Services,
    env_vars: BTreeMap<String, String>,
    hardware: Option<HardwareSpec>,
    security: SecurityState,
    hostname: String,
    ip_address: String,
    os_dist: String,
    os_version: String,
    fs_type: String,
}

impl SystemImage {
    /// Start building an image with the given id.
    pub fn builder(id: impl Into<String>) -> SystemImageBuilder {
        SystemImageBuilder::new(id)
    }

    /// The image identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The virtual file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Account database (`/etc/passwd`, `/etc/group`).
    pub fn accounts(&self) -> &Accounts {
        &self.accounts
    }

    /// Service/port table (`/etc/services`).
    pub fn services(&self) -> &Services {
        &self.services
    }

    /// Environment variables (only populated for running instances; empty
    /// for dormant images, per Table 7's footnote).
    pub fn env_vars(&self) -> &BTreeMap<String, String> {
        &self.env_vars
    }

    /// Hardware specification; `None` for dormant images (EC2 images are
    /// instantiated with varying hardware — Table 7 footnote, and the root
    /// cause of the paper's missed real-world case #8).
    pub fn hardware(&self) -> Option<&HardwareSpec> {
        self.hardware.as_ref()
    }

    /// Security-module state (SELinux / AppArmor).
    pub fn security(&self) -> &SecurityState {
        &self.security
    }

    /// System host name (`Sys.HostName`).
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Primary IP address (`Sys.IPAddress`).
    pub fn ip_address(&self) -> &str {
        &self.ip_address
    }

    /// OS distribution name (`OS.DistName`).
    pub fn os_dist(&self) -> &str {
        &self.os_dist
    }

    /// OS version string (`OS.Version`).
    pub fn os_version(&self) -> &str {
        &self.os_version
    }

    /// Root file-system type (`Sys.FSType`).
    pub fn fs_type(&self) -> &str {
        &self.fs_type
    }

    /// Read a config file's contents from the VFS, if present and regular.
    pub fn read_file(&self, path: &str) -> Option<&str> {
        self.vfs.contents(path)
    }

    /// Replace the VFS wholesale — scenario builders use this to derive a
    /// broken image from a generated one.
    pub fn with_vfs(mut self, vfs: Vfs) -> SystemImage {
        self.vfs = vfs;
        self
    }

    /// Replace the security-module state.
    pub fn with_security(mut self, state: SecurityState) -> SystemImage {
        self.security = state;
        self
    }
}

/// Builder for [`SystemImage`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct SystemImageBuilder {
    image: SystemImage,
}

impl SystemImageBuilder {
    fn new(id: impl Into<String>) -> SystemImageBuilder {
        let mut image = SystemImage {
            id: id.into(),
            hostname: "localhost".to_string(),
            ip_address: "10.0.0.1".to_string(),
            os_dist: "AmazonLinux".to_string(),
            os_version: "2013.03".to_string(),
            fs_type: "ext4".to_string(),
            ..SystemImage::default()
        };
        // Every Unix image has root and a root group.
        image.accounts.add_user(User::new("root", 0, 0));
        image.accounts.add_group(Group::new("root", 0, &["root"]));
        image.vfs.add_dir("/", "root", "root", 0o755);
        SystemImageBuilder { image }
    }

    /// Set the host name.
    pub fn hostname(mut self, name: impl Into<String>) -> Self {
        self.image.hostname = name.into();
        self
    }

    /// Set the primary IP address.
    pub fn ip_address(mut self, ip: impl Into<String>) -> Self {
        self.image.ip_address = ip.into();
        self
    }

    /// Set OS distribution and version.
    pub fn os(mut self, dist: impl Into<String>, version: impl Into<String>) -> Self {
        self.image.os_dist = dist.into();
        self.image.os_version = version.into();
        self
    }

    /// Add a user together with a same-named primary group and memberships.
    pub fn user(mut self, name: &str, uid: u32, groups: &[&str]) -> Self {
        self.image.accounts.add_user(User::new(name, uid, uid));
        for g in groups {
            self.image.accounts.ensure_group(g);
            self.image.accounts.add_membership(name, g);
        }
        self
    }

    /// Add a group with members.
    pub fn group(mut self, name: &str, gid: u32, members: &[&str]) -> Self {
        self.image
            .accounts
            .add_group(Group::new(name, gid, members));
        self
    }

    /// Add a directory (creating parents owned by root as needed).
    pub fn dir(mut self, path: &str, owner: &str, group: &str, mode: u32) -> Self {
        self.image.vfs.add_dir(path, owner, group, mode);
        self
    }

    /// Add a regular file with contents (creating parents as needed).
    pub fn file(mut self, path: &str, owner: &str, group: &str, mode: u32, contents: &str) -> Self {
        self.image.vfs.add_file(path, owner, group, mode, contents);
        self
    }

    /// Add a symbolic link.
    pub fn symlink(mut self, path: &str, target: &str) -> Self {
        self.image.vfs.add_symlink(path, target);
        self
    }

    /// Register a network service name for a port.
    pub fn service(mut self, name: &str, port: u16) -> Self {
        self.image.services.add(name, port);
        self
    }

    /// Set an environment variable (running instances only).
    pub fn env_var(mut self, key: &str, value: &str) -> Self {
        self.image
            .env_vars
            .insert(key.to_string(), value.to_string());
        self
    }

    /// Attach a hardware specification (running instances only).
    pub fn hardware(mut self, hw: HardwareSpec) -> Self {
        self.image.hardware = Some(hw);
        self
    }

    /// Set the security-module state.
    pub fn security(mut self, state: SecurityState) -> Self {
        self.image.security = state;
        self
    }

    /// Finish building.
    pub fn build(self) -> SystemImage {
        // Gate on the sink so the disabled path skips even the O(users)
        // account walk.
        if encore_obs::enabled() {
            let _span = obs::BUILD_TIME.span();
            obs::IMAGES_BUILT.incr();
            obs::VFS_NODES.add(self.image.vfs.len() as u64);
            obs::USERS.add(self.image.accounts.user_list().count() as u64);
            obs::GROUPS.add(self.image.accounts.group_list().count() as u64);
            obs::SERVICES.add(self.image.services.len() as u64);
            obs::ENV_VARS.add(self.image.env_vars.len() as u64);
        }
        self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_seeds_root() {
        let img = SystemImage::builder("i").build();
        assert!(img.accounts().user("root").is_some());
        assert!(img.vfs().metadata("/").is_some());
    }

    #[test]
    fn dormant_images_lack_hardware_and_env() {
        let img = SystemImage::builder("i").build();
        assert!(img.hardware().is_none());
        assert!(img.env_vars().is_empty());
    }

    #[test]
    fn file_contents_readable() {
        let img = SystemImage::builder("i")
            .file(
                "/etc/php.ini",
                "root",
                "root",
                0o644,
                "memory_limit = 64M\n",
            )
            .build();
        assert_eq!(img.read_file("/etc/php.ini"), Some("memory_limit = 64M\n"));
        assert_eq!(img.read_file("/missing"), None);
    }

    #[test]
    fn user_helper_creates_groups() {
        let img = SystemImage::builder("i")
            .user("mysql", 27, &["mysql"])
            .build();
        assert!(img.accounts().group("mysql").is_some());
        assert!(img.accounts().is_member("mysql", "mysql"));
    }
}
