//! Service/port table — the `/etc/services` stand-in.

use std::collections::BTreeMap;

/// Mapping between service names and port numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Services {
    by_port: BTreeMap<u16, String>,
    by_name: BTreeMap<String, u16>,
}

impl Services {
    /// An empty table.
    pub fn new() -> Services {
        Services::default()
    }

    /// A table preloaded with the well-known services the evaluated
    /// applications reference.
    pub fn well_known() -> Services {
        let mut s = Services::new();
        for (name, port) in [
            ("ssh", 22),
            ("smtp", 25),
            ("http", 80),
            ("pop3", 110),
            ("https", 443),
            ("mysql", 3306),
            ("postgres", 5432),
            ("http-alt", 8080),
        ] {
            s.add(name, port);
        }
        s
    }

    /// Register a service.
    pub fn add(&mut self, name: &str, port: u16) {
        self.by_port.insert(port, name.to_string());
        self.by_name.insert(name.to_string(), port);
    }

    /// Service name for a port (`Service.PortServMap`, Table 7).
    pub fn name_of(&self, port: u16) -> Option<&str> {
        self.by_port.get(&port).map(String::as_str)
    }

    /// Port for a service name.
    pub fn port_of(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).copied()
    }

    /// Whether the port is registered at all.
    pub fn knows_port(&self, port: u16) -> bool {
        self.by_port.contains_key(&port)
    }

    /// Iterate registered ports (`Service.Ports`, Table 7).
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.by_port.keys().copied()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.by_port.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_port.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_has_the_app_ports() {
        let s = Services::well_known();
        assert_eq!(s.name_of(80), Some("http"));
        assert_eq!(s.name_of(3306), Some("mysql"));
        assert_eq!(s.port_of("https"), Some(443));
        assert!(!s.knows_port(5));
    }

    #[test]
    fn add_overwrites_both_directions() {
        let mut s = Services::new();
        s.add("custom", 9000);
        assert_eq!(s.name_of(9000), Some("custom"));
        assert_eq!(s.port_of("custom"), Some(9000));
        assert_eq!(s.len(), 1);
    }
}
