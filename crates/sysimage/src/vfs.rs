//! Virtual file system with per-node Unix metadata.
//!
//! This is the stand-in for the file-system metadata the paper's collector
//! crawls from images.  It supports everything the semantic type verifier
//! and the Table 5a augmenter need: existence checks, owner/group/mode,
//! directory-vs-file kind, directory listings, symlink detection, and a
//! Unix-style accessibility check (used by the `!=` / NotAccessible
//! template).

use std::collections::BTreeMap;

/// Kind of a VFS node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileKind {
    /// Short name as rendered into augmented attributes (`dir` / `file` /
    /// `symlink`), matching Table 5a's `datadir.type = dir` example.
    pub fn name(self) -> &'static str {
        match self {
            FileKind::Regular => "file",
            FileKind::Directory => "dir",
            FileKind::Symlink => "symlink",
        }
    }
}

/// Metadata of one VFS node.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// Owning user name.
    pub owner: String,
    /// Owning group name.
    pub group: String,
    /// Unix permission bits (e.g. `0o644`).
    pub mode: u32,
    /// Node kind.
    pub kind: FileKind,
    /// Symlink target, when `kind == Symlink`.
    pub symlink_target: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    meta: FileMeta,
    contents: Option<String>,
}

/// An in-memory file tree with Unix metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
}

fn normalize(path: &str) -> String {
    if path == "/" {
        return "/".to_string();
    }
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        "/".to_string()
    } else {
        trimmed.to_string()
    }
}

fn parent_of(path: &str) -> Option<String> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(i) => Some(path[..i].to_string()),
        None => None,
    }
}

impl Vfs {
    /// Create an empty VFS.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    fn ensure_parents(&mut self, path: &str) {
        let mut missing = Vec::new();
        let mut cur = parent_of(path);
        while let Some(p) = cur {
            if self.nodes.contains_key(&p) {
                break;
            }
            missing.push(p.clone());
            cur = parent_of(&p);
        }
        for p in missing.into_iter().rev() {
            self.nodes.insert(
                p,
                Node {
                    meta: FileMeta {
                        owner: "root".to_string(),
                        group: "root".to_string(),
                        mode: 0o755,
                        kind: FileKind::Directory,
                        symlink_target: None,
                    },
                    contents: None,
                },
            );
        }
    }

    /// Add (or replace) a directory, creating root-owned parents as needed.
    pub fn add_dir(&mut self, path: &str, owner: &str, group: &str, mode: u32) {
        let path = normalize(path);
        self.ensure_parents(&path);
        self.nodes.insert(
            path,
            Node {
                meta: FileMeta {
                    owner: owner.to_string(),
                    group: group.to_string(),
                    mode,
                    kind: FileKind::Directory,
                    symlink_target: None,
                },
                contents: None,
            },
        );
    }

    /// Add (or replace) a regular file, creating parents as needed.
    pub fn add_file(&mut self, path: &str, owner: &str, group: &str, mode: u32, contents: &str) {
        let path = normalize(path);
        self.ensure_parents(&path);
        self.nodes.insert(
            path,
            Node {
                meta: FileMeta {
                    owner: owner.to_string(),
                    group: group.to_string(),
                    mode,
                    kind: FileKind::Regular,
                    symlink_target: None,
                },
                contents: Some(contents.to_string()),
            },
        );
    }

    /// Add (or replace) a symlink, creating parents as needed.
    pub fn add_symlink(&mut self, path: &str, target: &str) {
        let path = normalize(path);
        self.ensure_parents(&path);
        self.nodes.insert(
            path,
            Node {
                meta: FileMeta {
                    owner: "root".to_string(),
                    group: "root".to_string(),
                    mode: 0o777,
                    kind: FileKind::Symlink,
                    symlink_target: Some(target.to_string()),
                },
                contents: None,
            },
        );
    }

    /// Change owner/group of an existing node; returns `false` if absent.
    pub fn chown(&mut self, path: &str, owner: &str, group: &str) -> bool {
        match self.nodes.get_mut(&normalize(path)) {
            Some(n) => {
                n.meta.owner = owner.to_string();
                n.meta.group = group.to_string();
                true
            }
            None => false,
        }
    }

    /// Change mode of an existing node; returns `false` if absent.
    pub fn chmod(&mut self, path: &str, mode: u32) -> bool {
        match self.nodes.get_mut(&normalize(path)) {
            Some(n) => {
                n.meta.mode = mode;
                true
            }
            None => false,
        }
    }

    /// Remove a node (and any children, if a directory).
    pub fn remove(&mut self, path: &str) {
        let path = normalize(path);
        let prefix = format!("{}/", path);
        self.nodes
            .retain(|p, _| p != &path && !p.starts_with(&prefix));
    }

    /// Metadata of a node.
    pub fn metadata(&self, path: &str) -> Option<&FileMeta> {
        self.nodes.get(&normalize(path)).map(|n| &n.meta)
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(&normalize(path))
    }

    /// Whether a path exists and is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        self.metadata(path)
            .map(|m| m.kind == FileKind::Directory)
            .unwrap_or(false)
    }

    /// Whether a path exists and is a regular file.
    pub fn is_file(&self, path: &str) -> bool {
        self.metadata(path)
            .map(|m| m.kind == FileKind::Regular)
            .unwrap_or(false)
    }

    /// Contents of a regular file.
    pub fn contents(&self, path: &str) -> Option<&str> {
        self.nodes
            .get(&normalize(path))
            .and_then(|n| n.contents.as_deref())
    }

    /// Immediate children of a directory (full paths, sorted).
    pub fn children(&self, path: &str) -> Vec<&str> {
        let dir = normalize(path);
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        self.nodes
            .keys()
            .filter(|p| {
                p.starts_with(&prefix) && p.len() > prefix.len() && !p[prefix.len()..].contains('/')
            })
            .map(String::as_str)
            .collect()
    }

    /// Whether a directory directly contains a sub-directory.
    pub fn has_subdir(&self, path: &str) -> bool {
        self.children(path).iter().any(|c| self.is_dir(c))
    }

    /// Whether a directory directly contains a symlink — drives the
    /// `FollowSymLinks` correlation (real-world case #6).
    pub fn has_symlink(&self, path: &str) -> bool {
        self.children(path).iter().any(|c| {
            self.metadata(c)
                .map(|m| m.kind == FileKind::Symlink)
                .unwrap_or(false)
        })
    }

    /// All paths in the tree (the `FS.FileList` view of Table 7).
    pub fn file_list(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Unix-style accessibility check: can `user` (member of `groups`) read
    /// the node?  Checks the owner/group/other read bits; root always can.
    pub fn readable_by(&self, path: &str, user: &str, groups: &[&str]) -> bool {
        if user == "root" {
            return true;
        }
        match self.metadata(path) {
            None => false,
            Some(m) => {
                if m.owner == user {
                    m.mode & 0o400 != 0
                } else if groups.contains(&m.group.as_str()) {
                    m.mode & 0o040 != 0
                } else {
                    m.mode & 0o004 != 0
                }
            }
        }
    }

    /// Unix-style writability check, mirroring [`Vfs::readable_by`].
    pub fn writable_by(&self, path: &str, user: &str, groups: &[&str]) -> bool {
        if user == "root" {
            return true;
        }
        match self.metadata(path) {
            None => false,
            Some(m) => {
                if m.owner == user {
                    m.mode & 0o200 != 0
                } else if groups.contains(&m.group.as_str()) {
                    m.mode & 0o020 != 0
                } else {
                    m.mode & 0o002 != 0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs() -> Vfs {
        let mut v = Vfs::new();
        v.add_dir("/", "root", "root", 0o755);
        v.add_dir("/var/lib/mysql", "mysql", "mysql", 0o700);
        v.add_file("/var/lib/mysql/ibdata1", "mysql", "mysql", 0o660, "");
        v.add_file("/etc/php.ini", "root", "root", 0o644, "x=1");
        v.add_symlink("/var/www/html/link", "/etc");
        v
    }

    #[test]
    fn parents_are_created() {
        let v = vfs();
        assert!(v.is_dir("/var"));
        assert!(v.is_dir("/var/lib"));
        assert_eq!(v.metadata("/var").unwrap().owner, "root");
    }

    #[test]
    fn kind_checks() {
        let v = vfs();
        assert!(v.is_dir("/var/lib/mysql"));
        assert!(v.is_file("/etc/php.ini"));
        assert!(!v.is_dir("/etc/php.ini"));
        assert_eq!(
            v.metadata("/var/www/html/link").unwrap().kind,
            FileKind::Symlink
        );
    }

    #[test]
    fn children_and_symlink_detection() {
        let v = vfs();
        assert_eq!(v.children("/var/lib/mysql"), vec!["/var/lib/mysql/ibdata1"]);
        assert!(v.has_symlink("/var/www/html"));
        assert!(!v.has_symlink("/var/lib/mysql"));
        assert!(v.has_subdir("/var"));
    }

    #[test]
    fn trailing_slash_normalized() {
        let v = vfs();
        assert!(v.exists("/var/lib/mysql/"));
        assert!(v.is_dir("/var/lib/mysql/"));
    }

    #[test]
    fn accessibility_owner_group_other() {
        let v = vfs();
        // owner read of 0o700 dir
        assert!(v.readable_by("/var/lib/mysql", "mysql", &["mysql"]));
        // other users cannot read 0o700
        assert!(!v.readable_by("/var/lib/mysql", "apache", &["apache"]));
        // group member can read 0o660 file
        assert!(v.readable_by("/var/lib/mysql/ibdata1", "backup", &["mysql"]));
        // world-readable file
        assert!(v.readable_by("/etc/php.ini", "nobody", &[]));
        // world cannot write 0o644
        assert!(!v.writable_by("/etc/php.ini", "nobody", &[]));
        // root can do everything
        assert!(v.writable_by("/var/lib/mysql", "root", &[]));
    }

    #[test]
    fn remove_is_recursive() {
        let mut v = vfs();
        v.remove("/var/lib/mysql");
        assert!(!v.exists("/var/lib/mysql"));
        assert!(!v.exists("/var/lib/mysql/ibdata1"));
        assert!(v.exists("/var/lib"));
    }

    #[test]
    fn chown_chmod() {
        let mut v = vfs();
        assert!(v.chown("/etc/php.ini", "apache", "apache"));
        assert_eq!(v.metadata("/etc/php.ini").unwrap().owner, "apache");
        assert!(v.chmod("/etc/php.ini", 0o600));
        assert_eq!(v.metadata("/etc/php.ini").unwrap().mode, 0o600);
        assert!(!v.chown("/missing", "a", "b"));
    }
}
