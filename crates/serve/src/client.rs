//! A small blocking client for the `encore-serve` protocol — used by the
//! CLI's client subcommands, the integration tests, and the CI smoke job.

use crate::protocol::{self, CheckReply, Request};
use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running service; requests are serial per client
/// (open several clients for concurrency).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

fn protocol_error(reason: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason)
}

impl Client {
    /// Connect to the service socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (no server on the socket).
    pub fn connect(socket: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Check `targets` (name, config payload) against `app`.  Returns the
    /// per-target report bodies in request order, or [`CheckReply::Busy`]
    /// when the service's queue is full.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol-level `error` responses.
    pub fn check(&mut self, app: &str, targets: &[(String, String)]) -> io::Result<CheckReply> {
        let request = Request::Check {
            app: app.to_string(),
            targets: targets.to_vec(),
        };
        protocol::write_request(&mut self.writer, &request)?;
        protocol::read_check_response(&mut self.reader)?.map_err(protocol_error)
    }

    fn lines(&mut self, request: &Request) -> io::Result<Vec<String>> {
        protocol::write_request(&mut self.writer, request)?;
        protocol::read_lines_response(&mut self.reader)?.map_err(protocol_error)
    }

    /// List registered apps: `<name> <kind> <ready|not-ready> reloads=<n>`.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol-level `error` responses.
    pub fn apps(&mut self) -> io::Result<Vec<String>> {
        self.lines(&Request::Apps)
    }

    /// Force a snapshot reload for `app`.
    ///
    /// # Errors
    ///
    /// Transport failures; a failed reload comes back as the server's
    /// `error` message.
    pub fn reload(&mut self, app: &str) -> io::Result<Vec<String>> {
        self.lines(&Request::Reload {
            app: app.to_string(),
        })
    }

    /// Service counters as `<name> <value>` lines.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol-level `error` responses.
    pub fn stats(&mut self) -> io::Result<Vec<String>> {
        self.lines(&Request::Stats)
    }

    /// Ask the service to stop (it drains queued work first).
    ///
    /// # Errors
    ///
    /// Transport failures and protocol-level `error` responses.
    pub fn shutdown(&mut self) -> io::Result<Vec<String>> {
        self.lines(&Request::Shutdown)
    }

    /// Occupy a dispatcher slot for `ms` milliseconds (diagnostics: makes
    /// queue depth and `busy` observable).  Returns the reply lines, or
    /// `None` when the queue was full.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol-level `error` responses.
    pub fn sleep(&mut self, ms: u64) -> io::Result<Option<Vec<String>>> {
        protocol::write_request(&mut self.writer, &Request::Sleep { ms })?;
        match protocol::read_lines_response(&mut self.reader)? {
            Ok(lines) => Ok(Some(lines)),
            Err(reason) if reason == "busy" => Ok(None),
            Err(reason) => Err(protocol_error(reason)),
        }
    }
}
