//! The `encore-serve` service: accept loop, bounded dispatch, hot-reload
//! poller, and the telemetry surface.
//!
//! Shape (one box per thread):
//!
//! ```text
//!  clients ──► accept loop ──► connection threads ──► BoundedQueue ──► dispatcher
//!                                   │    ▲                               │
//!                                   │    └── reply channel (capacity 1) ─┘
//!                                   └─ admin verbs answered inline
//!  poll thread: registry.poll() + JSONL heartbeat every interval
//!  metrics server: /metrics /healthz /readyz   (optional TCP port)
//! ```
//!
//! Admin verbs (`apps`, `reload`, `stats`, `shutdown`) are answered on
//! the connection thread — they must keep working while the queue is
//! saturated, or an operator could never diagnose a stuck service.
//! `check` and `sleep` go through the bounded queue; a full queue answers
//! `busy` immediately (the backpressure contract — see DESIGN.md §15).
//! The single dispatcher keeps fleet checks serialized so concurrent
//! clients contend for the work-stealing pool in a deterministic order
//! and each response stays byte-identical to a direct
//! [`AnomalyDetector::check_fleet`] call.
//!
//! [`AnomalyDetector::check_fleet`]: encore::AnomalyDetector::check_fleet

use crate::protocol::{self, Request, Response};
use crate::queue::BoundedQueue;
use crate::registry::SnapshotRegistry;
use encore::{FleetOptions, StopFlag};
use encore_obs::expose::MetricsServer;
use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Bounded work-queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Worker threads per fleet check; `None` uses all parallelism.
    pub workers: Option<usize>,
    /// Snapshot-change poll interval for hot reloads.
    pub poll_interval: Duration,
    /// `host:port` for the Prometheus `/metrics`, `/healthz`, `/readyz`
    /// endpoints; `None` disables the HTTP surface.
    pub metrics_addr: Option<String>,
    /// Append one JSONL heartbeat line (the per-interval metric delta)
    /// here every poll tick; `None` disables the heartbeat.
    pub heartbeat_path: Option<PathBuf>,
    /// Capture any request whose parse + queue-wait + check + respond
    /// total reaches this many microseconds: a `request.slow` event with
    /// the full decomposition, plus per-stage fragments in the trace
    /// ring.  `None` disables the capture.
    pub slow_micros: Option<u64>,
}

impl ServeOptions {
    /// Defaults: queue of 16, all-core checks, 1 s poll, no HTTP surface,
    /// no heartbeat, no slow-request capture.
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            socket: socket.into(),
            queue_capacity: 16,
            workers: None,
            poll_interval: Duration::from_secs(1),
            metrics_addr: None,
            heartbeat_path: None,
            slow_micros: None,
        }
    }
}

/// Plain atomic service counters behind the `stats` verb.
///
/// Deliberately *not* the obs instruments: those no-op when the global
/// sink is disabled, and `stats` must answer truthfully regardless.  The
/// obs instruments are updated alongside these for the scrape surface.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests read off client connections (any verb).
    pub requests: AtomicU64,
    /// `check` requests accepted into the queue.
    pub checks: AtomicU64,
    /// Target payloads checked.
    pub targets_checked: AtomicU64,
    /// Requests rejected with `busy`.
    pub rejected_busy: AtomicU64,
    /// Requests answered with `error`.
    pub errors: AtomicU64,
}

impl ServeStats {
    fn lines(&self, queue: &BoundedQueue<Job>, registry: &SnapshotRegistry) -> Vec<String> {
        let statuses = registry.statuses();
        let ready = statuses.iter().filter(|s| s.ready).count();
        let events = encore_obs::event::health();
        vec![
            format!("requests {}", self.requests.load(Ordering::Relaxed)),
            format!("checks {}", self.checks.load(Ordering::Relaxed)),
            format!(
                "targets_checked {}",
                self.targets_checked.load(Ordering::Relaxed)
            ),
            format!(
                "rejected_busy {}",
                self.rejected_busy.load(Ordering::Relaxed)
            ),
            format!("errors {}", self.errors.load(Ordering::Relaxed)),
            format!("queue_depth {}", queue.depth()),
            format!("queue_capacity {}", queue.capacity()),
            format!("apps {}", statuses.len()),
            format!("apps_ready {ready}"),
            format!("events_written {}", events.written),
            format!("events_dropped {}", events.dropped),
            format!("events_queue_depth {}", events.queue_depth),
        ]
    }
}

/// Dense request ids, minted per request read (any verb, well-formed or
/// not) and carried through the queue so dispatcher-side events land in
/// the same request scope as connection-side ones.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Dispatcher-side timing of one queued job, returned to the connection
/// thread with the response so the per-request record carries the full
/// decomposition.  Zero for inline (admin) verbs' queue wait.
#[derive(Debug, Clone, Copy, Default)]
struct JobTimings {
    /// Enqueue to dequeue.
    queue_wait: Duration,
    /// Dequeue to response ready (fleet check or sleep).
    check: Duration,
}

/// What a connection thread hands the dispatcher.
struct Job {
    id: u64,
    kind: JobKind,
    /// Capacity-1 rendezvous back to the connection thread.
    reply: SyncSender<(Response, JobTimings)>,
    enqueued: Instant,
}

enum JobKind {
    Check {
        app: String,
        targets: Vec<(String, String)>,
    },
    Sleep {
        ms: u64,
    },
}

/// A running detection service; stops (and unlinks its socket) on drop.
pub struct Server {
    socket: PathBuf,
    stop: Arc<StopFlag>,
    queue: Arc<BoundedQueue<Job>>,
    stats: Arc<ServeStats>,
    registry: Arc<SnapshotRegistry>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
}

/// Bind the unix socket, recovering a stale file left by a crashed
/// server: if nobody answers a probe connect, the file is an orphan and
/// is removed; if somebody answers, a live server owns the path.
fn bind_socket(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{}: another server is live on this socket", path.display()),
                ));
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

impl Server {
    /// Start serving `registry` according to `options`.
    ///
    /// # Errors
    ///
    /// Propagates socket-bind and metrics-bind failures.
    pub fn start(registry: SnapshotRegistry, options: ServeOptions) -> io::Result<Server> {
        let listener = bind_socket(&options.socket)?;
        let registry = Arc::new(registry);
        let stop = Arc::new(StopFlag::new());
        let queue = Arc::new(BoundedQueue::new(options.queue_capacity));
        let stats = Arc::new(ServeStats::default());
        crate::obs::QUEUE_CAPACITY.set(queue.capacity() as u64);
        sync_app_gauges(&registry);

        let metrics = match &options.metrics_addr {
            Some(addr) => {
                let status_registry = Arc::clone(&registry);
                Some(MetricsServer::start_with_status(
                    addr,
                    move || status_registry.ready(),
                    crate::obs::render_prometheus,
                )?)
            }
            None => None,
        };

        let dispatcher = {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let workers = options.workers;
            std::thread::spawn(move || dispatch_loop(&queue, &registry, workers))
        };

        let poller = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let interval = options.poll_interval;
            let heartbeat = options.heartbeat_path.clone();
            std::thread::spawn(move || poll_loop(&registry, &stop, interval, heartbeat.as_deref()))
        };

        let accept = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let slow_micros = options.slow_micros;
            std::thread::spawn(move || {
                accept_loop(&listener, &registry, &stop, &queue, &stats, slow_micros);
            })
        };

        Ok(Server {
            socket: options.socket,
            stop,
            queue,
            stats,
            registry,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            poller: Some(poller),
            metrics,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The service counters (shared with the `stats` verb).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The bound metrics address, when the HTTP surface is enabled
    /// (`host:0` in the options resolves to a real port here).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::addr)
    }

    /// A shared handle that stops the service when signalled — e.g. from
    /// a stdin-EOF watcher thread; [`Server::join`] returns once it
    /// fires.
    pub fn stop_signal(&self) -> Arc<StopFlag> {
        Arc::clone(&self.stop)
    }

    /// The registry being served.
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.registry
    }

    /// Block until a `shutdown` request (or [`Server::stop`] from another
    /// thread) stops the service, then tear down.
    pub fn join(mut self) {
        self.stop.wait();
        self.shutdown();
    }

    /// Stop the service: reject new work, drain the queue, join every
    /// thread, unlink the socket.  Idempotent.
    pub fn stop(&mut self) {
        self.stop.stop();
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.stop();
        self.queue.close();
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = UnixStream::connect(&self.socket);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.poller.take() {
            let _ = handle.join();
        }
        if let Some(mut metrics) = self.metrics.take() {
            metrics.stop();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn sync_app_gauges(registry: &SnapshotRegistry) {
    let statuses = registry.statuses();
    crate::obs::APPS.set(statuses.len() as u64);
    crate::obs::APPS_READY.set(statuses.iter().filter(|s| s.ready).count() as u64);
}

/// Saturating microseconds of a duration (µs end to end; ms quantized
/// every wire-speed stage into one bucket).
fn micros(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// The single dispatcher: drains the queue until it is closed and empty.
fn dispatch_loop(queue: &BoundedQueue<Job>, registry: &SnapshotRegistry, workers: Option<usize>) {
    while let Some(job) = queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        crate::obs::QUEUE_WAIT.observe(micros(queue_wait));
        let started = Instant::now();
        // Dispatcher-side events (detect.fleet, ...) join the request's
        // scope: the id rode along through the queue.
        let response = encore_obs::event::with_request(job.id, || match job.kind {
            JobKind::Check { app, targets } => run_check(registry, workers, &app, &targets),
            JobKind::Sleep { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
                Response::Lines(vec![format!("slept {ms}")])
            }
        });
        let check = started.elapsed();
        crate::obs::REQUEST_DURATION.observe(micros(check));
        // A send fails only when the client hung up while queued; the
        // work is already done either way.
        let _ = job.reply.send((response, JobTimings { queue_wait, check }));
    }
}

/// Run one fleet check.  The report bodies are exactly
/// [`Report::render`](encore::Report::render) — byte-identical to what a
/// direct `check_fleet` caller sees.
fn run_check(
    registry: &SnapshotRegistry,
    workers: Option<usize>,
    app: &str,
    targets: &[(String, String)],
) -> Response {
    let Some((kind, detector)) = registry.detector(app) else {
        return Response::Error(format!("unknown app `{app}`"));
    };
    let images: Vec<_> = targets
        .iter()
        .map(|(name, payload)| encore::watch::target_image(kind, name, payload))
        .collect();
    let options = FleetOptions { workers };
    let results = detector.check_fleet(kind, &images, &options);
    crate::obs::TARGETS_CHECKED.add(targets.len() as u64);
    let reports = targets
        .iter()
        .zip(results)
        .map(|((name, _), result)| {
            let body = match result {
                Ok(report) => report.render(),
                Err(e) => format!("assemble error: {e}\n"),
            };
            (name.clone(), body)
        })
        .collect();
    Response::Reports(reports)
}

/// Hot-reload poller + JSONL heartbeat.
fn poll_loop(
    registry: &SnapshotRegistry,
    stop: &StopFlag,
    interval: Duration,
    heartbeat: Option<&Path>,
) {
    let mut baseline = crate::obs::scrape_report();
    loop {
        if stop.wait_timeout(interval) {
            return;
        }
        registry.poll();
        sync_app_gauges(registry);
        if let Some(path) = heartbeat {
            let current = crate::obs::scrape_report();
            let delta = current.delta_since(&baseline, &|name| crate::obs::histogram_bounds(name));
            baseline = current;
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(file, "{}", delta.render_json());
            }
        }
    }
}

/// Accept connections until the stop flag is raised; each connection gets
/// its own thread (clients are few — operators and fleet crawlers — and a
/// blocked read must not stall other clients).
fn accept_loop(
    listener: &UnixListener,
    registry: &Arc<SnapshotRegistry>,
    stop: &Arc<StopFlag>,
    queue: &Arc<BoundedQueue<Job>>,
    stats: &Arc<ServeStats>,
    slow_micros: Option<u64>,
) {
    let mut connections: Vec<(UnixStream, JoinHandle<()>)> = Vec::new();
    for stream in listener.incoming() {
        if stop.is_stopped() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(hangup) = stream.try_clone() else {
            continue;
        };
        let registry = Arc::clone(registry);
        let stop = Arc::clone(stop);
        let queue = Arc::clone(queue);
        let stats = Arc::clone(stats);
        let handle = std::thread::spawn(move || {
            let _ = serve_connection(stream, &registry, &stop, &queue, &stats, slow_micros);
        });
        connections.push((hangup, handle));
        connections.retain(|(_, handle)| !handle.is_finished());
    }
    // Idle clients sit blocked in a read between requests; hang up on
    // them so every connection thread observes EOF and can be joined.
    for (stream, _) in &connections {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for (_, handle) in connections {
        let _ = handle.join();
    }
}

/// Serve one client until EOF, a malformed request, or shutdown.
///
/// The accept loop keeps a hangup clone of the socket, so merely
/// dropping our file descriptors would NOT deliver EOF to the client;
/// an explicit `shutdown` acts on the socket itself and closes the
/// connection past every outstanding clone.
fn serve_connection(
    stream: UnixStream,
    registry: &SnapshotRegistry,
    stop: &StopFlag,
    queue: &BoundedQueue<Job>,
    stats: &ServeStats,
    slow_micros: Option<u64>,
) -> io::Result<()> {
    let hangup = stream.try_clone()?;
    let result = serve_requests(stream, registry, stop, queue, stats, slow_micros);
    let _ = hangup.shutdown(std::net::Shutdown::Both);
    result
}

/// The event-record verb label of a request.
fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Check { .. } => "check",
        Request::Apps => "apps",
        Request::Reload { .. } => "reload",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
        Request::Sleep { .. } => "sleep",
    }
}

/// The event-record status label of a response.
fn status_of(response: &Response) -> &'static str {
    match response {
        Response::Busy => "busy",
        Response::Error(_) => "error",
        _ => "ok",
    }
}

/// Write `response`, returning how long rendering it onto the wire took.
fn respond_timed(writer: &mut impl Write, response: &Response) -> io::Result<Duration> {
    let started = Instant::now();
    protocol::write_response(writer, response)?;
    Ok(started.elapsed())
}

/// Close out one request: emit its `request.done` record and, when the
/// parse + queue-wait + check + respond total reaches the `slow_micros`
/// threshold, a `request.slow` event plus per-stage trace fragments.
///
/// The fragments are laid end to end backwards from "now" (the anchor
/// right after the response hit the wire), so in the trace viewer the
/// four stages of a captured request read as one contiguous lane.
fn record_done(
    verb: &'static str,
    response: &Response,
    parse: Duration,
    timings: JobTimings,
    respond: Duration,
    slow_micros: Option<u64>,
) {
    let (parse_us, queue_us) = (micros(parse), micros(timings.queue_wait));
    let (check_us, respond_us) = (micros(timings.check), micros(respond));
    let total_us = parse_us
        .saturating_add(queue_us)
        .saturating_add(check_us)
        .saturating_add(respond_us);
    let decomposition = |extra: Vec<(String, encore_obs::json::Json)>| {
        use encore_obs::json::Json;
        let mut fields = vec![
            ("verb".to_string(), Json::Str(verb.to_string())),
            (
                "status".to_string(),
                Json::Str(status_of(response).to_string()),
            ),
            ("parse_us".to_string(), Json::Num(parse_us)),
            ("queue_us".to_string(), Json::Num(queue_us)),
            ("check_us".to_string(), Json::Num(check_us)),
            ("respond_us".to_string(), Json::Num(respond_us)),
            ("total_us".to_string(), Json::Num(total_us)),
        ];
        fields.extend(extra);
        fields
    };
    if encore_obs::event::enabled() {
        encore_obs::event::emit(
            encore_obs::event::Level::Info,
            "request.done",
            decomposition(Vec::new()),
        );
    }
    let Some(threshold) = slow_micros else { return };
    if total_us < threshold {
        return;
    }
    if encore_obs::event::enabled() {
        use encore_obs::json::Json;
        encore_obs::event::emit(
            encore_obs::event::Level::Warn,
            "request.slow",
            decomposition(vec![("threshold_us".to_string(), Json::Num(threshold))]),
        );
    }
    let anchor = Instant::now();
    let respond_start = anchor.checked_sub(respond).unwrap_or(anchor);
    let check_start = respond_start
        .checked_sub(timings.check)
        .unwrap_or(respond_start);
    let queue_start = check_start
        .checked_sub(timings.queue_wait)
        .unwrap_or(check_start);
    let parse_start = queue_start.checked_sub(parse).unwrap_or(queue_start);
    encore_obs::trace::record_external("serve.slow.parse", parse_start, parse);
    encore_obs::trace::record_external("serve.slow.queue_wait", queue_start, timings.queue_wait);
    encore_obs::trace::record_external("serve.slow.check", check_start, timings.check);
    encore_obs::trace::record_external("serve.slow.respond", respond_start, respond);
}

/// The request loop behind [`serve_connection`].
fn serve_requests(
    stream: UnixStream,
    registry: &SnapshotRegistry,
    stop: &StopFlag,
    queue: &BoundedQueue<Job>,
    stats: &ServeStats,
    slow_micros: Option<u64>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let Some((parsed, parse)) = protocol::read_request_timed(&mut reader)? else {
            return Ok(());
        };
        let id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        crate::obs::REQUESTS.incr();
        let request = match parsed {
            Err(reason) => {
                // The stream cannot be resynchronized after a framing
                // error: answer and close.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                crate::obs::ERRORS.incr();
                let response = Response::Error(reason);
                let respond = respond_timed(&mut writer, &response)?;
                encore_obs::event::with_request(id, || {
                    record_done(
                        "malformed",
                        &response,
                        parse,
                        JobTimings::default(),
                        respond,
                        slow_micros,
                    );
                });
                return Ok(());
            }
            Ok(request) => request,
        };
        let verb = verb_of(&request);
        if matches!(request, Request::Shutdown) {
            let response = Response::Lines(vec!["stopping".into()]);
            let respond = respond_timed(&mut writer, &response)?;
            encore_obs::event::with_request(id, || {
                record_done(
                    verb,
                    &response,
                    parse,
                    JobTimings::default(),
                    respond,
                    slow_micros,
                );
            });
            stop.stop();
            queue.close();
            return Ok(());
        }
        let inline_started = Instant::now();
        let (response, timings) = match request {
            Request::Apps => {
                let lines = registry
                    .statuses()
                    .iter()
                    .map(|s| {
                        format!(
                            "{} {} {} reloads={}",
                            s.name,
                            s.kind.name(),
                            if s.ready { "ready" } else { "not-ready" },
                            s.reloads
                        )
                    })
                    .collect();
                (Response::Lines(lines), None)
            }
            Request::Reload { app } => {
                let response = match registry.reload(&app) {
                    Ok(()) => Response::Lines(vec![format!("reloaded {app}")]),
                    Err(e) => Response::Error(e),
                };
                sync_app_gauges(registry);
                (response, None)
            }
            Request::Stats => (Response::Lines(stats.lines(queue, registry)), None),
            Request::Shutdown => unreachable!("handled above"),
            Request::Check { app, targets } => {
                let count = targets.len() as u64;
                let (response, timings) = enqueue(
                    queue,
                    JobKind::Check { app, targets },
                    stats,
                    Some(count),
                    id,
                );
                (response, Some(timings))
            }
            Request::Sleep { ms } => {
                let (response, timings) = enqueue(queue, JobKind::Sleep { ms }, stats, None, id);
                (response, Some(timings))
            }
        };
        // Inline verbs have no queue wait; their work is the check stage.
        let timings = timings.unwrap_or(JobTimings {
            queue_wait: Duration::ZERO,
            check: inline_started.elapsed(),
        });
        match &response {
            Response::Busy => {
                stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                crate::obs::REJECTED_BUSY.incr();
            }
            Response::Error(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                crate::obs::ERRORS.incr();
            }
            _ => {}
        }
        let respond = respond_timed(&mut writer, &response)?;
        encore_obs::event::with_request(id, || {
            record_done(verb, &response, parse, timings, respond, slow_micros);
        });
    }
}

/// Push a job through the bounded queue and wait for the dispatcher's
/// reply.  A full (or closing) queue yields `busy` without blocking.
fn enqueue(
    queue: &BoundedQueue<Job>,
    kind: JobKind,
    stats: &ServeStats,
    check_targets: Option<u64>,
    id: u64,
) -> (Response, JobTimings) {
    let (reply, receive) = std::sync::mpsc::sync_channel(1);
    let job = Job {
        id,
        kind,
        reply,
        enqueued: Instant::now(),
    };
    match queue.try_push(job) {
        Err(_) => (Response::Busy, JobTimings::default()),
        Ok(depth) => {
            crate::obs::QUEUE_DEPTH.set(depth as u64);
            if let Some(count) = check_targets {
                stats.checks.fetch_add(1, Ordering::Relaxed);
                stats.targets_checked.fetch_add(count, Ordering::Relaxed);
                crate::obs::CHECKS.incr();
            }
            match receive.recv() {
                Ok((response, timings)) => (response, timings),
                // The dispatcher dropped the reply sender without
                // answering: the service is shutting down mid-request.
                Err(_) => (
                    Response::Error("service shutting down".to_string()),
                    JobTimings::default(),
                ),
            }
        }
    }
}
