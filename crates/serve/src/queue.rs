//! The bounded work queue between connection threads and the dispatcher.
//!
//! Producers never block: [`BoundedQueue::try_push`] either enqueues and
//! reports the new depth, or hands the item back so the caller can answer
//! `busy` immediately — the protocol's backpressure contract.  The single
//! consumer blocks in [`BoundedQueue::pop`].  [`BoundedQueue::close`]
//! starts a graceful drain: producers are rejected from then on, the
//! consumer keeps receiving already-queued items, and `pop` returns
//! `None` only once the queue is both closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Multi-producer single-consumer bounded FIFO with explicit rejection.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (`capacity` ≥ 1 is
    /// clamped in, so the queue can always make progress).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy between calls; exact under the lock).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is at capacity or closed —
    /// the caller answers `busy` (full) or `error` (shutting down).
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue the next item, blocking until one arrives.  Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Stop admitting work and wake the consumer; queued items still
    /// drain through [`BoundedQueue::pop`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_beyond_capacity_hands_the_item_back() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.try_push(1), Ok(1));
        assert_eq!(queue.try_push(2), Ok(2));
        assert_eq!(queue.try_push(3), Err(3));
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let queue = BoundedQueue::new(4);
        queue.try_push("a").expect("fits");
        queue.try_push("b").expect("fits");
        queue.close();
        assert_eq!(queue.try_push("c"), Err("c"), "closed queue rejects");
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.pop(), Some("b"));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None, "stays terminated");
    }

    #[test]
    fn pop_blocks_until_a_producer_arrives() {
        let queue = Arc::new(BoundedQueue::new(1));
        let producer = Arc::clone(&queue);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            producer.try_push(7).expect("fits");
        });
        assert_eq!(queue.pop(), Some(7));
        handle.join().expect("producer");
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let closer = Arc::clone(&queue);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            closer.close();
        });
        assert_eq!(queue.pop(), None);
        handle.join().expect("closer");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        assert_eq!(queue.try_push(1), Ok(1));
        assert_eq!(queue.try_push(2), Err(2));
    }
}
