//! The line-delimited request/response protocol `encore-serve` speaks
//! over its unix socket.
//!
//! Every request starts with one verb line; `check` requests follow it
//! with length-prefixed target payload frames so config file contents —
//! which are full of newlines — never have to be escaped:
//!
//! ```text
//! request    := check-req | "apps" LF | "reload" SP app LF | "stats" LF
//!             | "shutdown" LF | "sleep" SP ms LF
//! check-req  := "check" SP app SP count LF target*          (count targets)
//! target     := "target" SP name SP len LF raw(len) LF
//!
//! response   := "ok" SP count LF line*        (admin verbs: count lines)
//!             | "ok" SP count LF report*      (check: count report frames)
//!             | "busy" LF                     (bounded queue is full)
//!             | "error" SP message LF
//! report     := "report" SP name SP len LF raw(len) LF
//! ```
//!
//! `app` and `name` are single tokens (no whitespace, no control bytes);
//! `len` counts the raw UTF-8 bytes of the frame body, which is followed
//! by exactly one terminating LF.  A request whose *grammar* is broken
//! cannot be resynchronized mid-stream (the reader no longer knows where
//! the next verb line starts), so servers answer `error` and close the
//! connection; well-formed requests that merely fail (unknown app, failed
//! reload) get an `error` response on a connection that stays usable.
//!
//! The framing carries explicit ceilings — [`MAX_TARGETS`] per check and
//! [`MAX_PAYLOAD`] bytes per target — so a malformed or malicious length
//! prefix cannot make the server allocate unboundedly.

use std::io::{self, BufRead, Write};

/// Most targets accepted in one `check` request.
pub const MAX_TARGETS: usize = 1024;

/// Largest accepted target payload, in bytes (1 MiB — config files are
/// orders of magnitude smaller).
pub const MAX_PAYLOAD: usize = 1 << 20;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Check `targets` (name, config payload) against the detector
    /// registered under `app`.
    Check {
        app: String,
        targets: Vec<(String, String)>,
    },
    /// List the registered apps and their readiness.
    Apps,
    /// Force a snapshot reload for one app.
    Reload { app: String },
    /// Service counters: requests, queue depth, rejections, ...
    Stats,
    /// Stop the service (drains queued work, then exits).
    Shutdown,
    /// Occupy a dispatcher slot for `ms` milliseconds — a diagnostics
    /// verb for probing queue depth and backpressure behaviour.
    Sleep { ms: u64 },
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ok <n>` followed by `n` plain info lines (admin verbs).
    Lines(Vec<String>),
    /// `ok <n>` followed by `n` report frames (the `check` verb); each
    /// body is the deterministic [`Report::render`] output, byte-identical
    /// to a direct `check_fleet` call.
    ///
    /// [`Report::render`]: encore::Report::render
    Reports(Vec<(String, String)>),
    /// The bounded work queue is full: try again later.
    Busy,
    /// The request failed; the message is a single line.
    Error(String),
}

/// Whether `token` is usable as an app or target name on a verb line.
pub fn valid_token(token: &str) -> bool {
    !token.is_empty() && token.chars().all(|c| !c.is_whitespace() && !c.is_control())
}

/// Read one line (through LF), erroring on EOF mid-request.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Read one length-prefixed frame body plus its terminating LF.
fn read_body(reader: &mut impl BufRead, len: usize) -> io::Result<Result<String, String>> {
    let mut raw = vec![0u8; len];
    reader.read_exact(&mut raw)?;
    let mut terminator = [0u8; 1];
    reader.read_exact(&mut terminator)?;
    if terminator[0] != b'\n' {
        return Ok(Err("frame body is not followed by LF".to_string()));
    }
    match String::from_utf8(raw) {
        Ok(body) => Ok(Ok(body)),
        Err(_) => Ok(Err("frame body is not UTF-8".to_string())),
    }
}

/// Read one request off the wire.
///
/// Returns `None` at a clean end-of-stream (the client hung up between
/// requests), `Some(Err(reason))` for a malformed request — after which
/// the stream can no longer be resynchronized and must be closed — and
/// `Some(Ok(request))` otherwise.
///
/// # Errors
///
/// Propagates transport I/O failures, including EOF mid-request.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Result<Request, String>>> {
    Ok(read_request_timed(reader)?.map(|(request, _)| request))
}

/// [`read_request`] plus how long reading and parsing the request took.
///
/// The clock starts after the verb line arrives, so idle wire-wait
/// between requests is excluded; what remains is frame parsing plus the
/// time target payload frames take to cross the wire — the `parse` stage
/// of the per-request decomposition.
///
/// # Errors
///
/// Propagates transport I/O failures, including EOF mid-request.
pub fn read_request_timed(
    reader: &mut impl BufRead,
) -> io::Result<Option<(Result<Request, String>, std::time::Duration)>> {
    // Tolerate blank lines between requests (trailing newlines from shells).
    let line = loop {
        match read_line(reader)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let started = std::time::Instant::now();
    let parsed = finish_request(reader, &line)?;
    Ok(Some((parsed, started.elapsed())))
}

/// Parse the request whose verb `line` was already read, consuming any
/// follow-on frames from `reader`.
fn finish_request(reader: &mut impl BufRead, line: &str) -> io::Result<Result<Request, String>> {
    let malformed = |reason: String| Ok(Err(reason));
    let mut words = line.split_whitespace();
    let verb = words.next().unwrap_or("");
    let request = match (verb, words.next(), words.next(), words.next()) {
        ("apps", None, ..) => Request::Apps,
        ("stats", None, ..) => Request::Stats,
        ("shutdown", None, ..) => Request::Shutdown,
        ("reload", Some(app), None, _) if valid_token(app) => Request::Reload {
            app: app.to_string(),
        },
        ("sleep", Some(ms), None, _) => match ms.parse::<u64>() {
            Ok(ms) => Request::Sleep { ms },
            Err(_) => return malformed(format!("bad sleep duration `{ms}`")),
        },
        ("check", Some(app), Some(count), None) if valid_token(app) => {
            let count: usize = match count.parse() {
                Ok(n) if n <= MAX_TARGETS => n,
                Ok(n) => return malformed(format!("check count {n} exceeds {MAX_TARGETS}")),
                Err(_) => return malformed(format!("bad check count `{count}`")),
            };
            let mut targets = Vec::with_capacity(count);
            for _ in 0..count {
                let Some(frame) = read_line(reader)? else {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a check request",
                    ));
                };
                let mut words = frame.split_whitespace();
                let (header, name, len) = (words.next(), words.next(), words.next());
                if header != Some("target")
                    || name.is_none()
                    || len.is_none()
                    || words.next().is_some()
                {
                    return malformed(format!("bad target frame `{frame}`"));
                }
                let name = name.expect("checked above");
                if !valid_token(name) {
                    return malformed(format!("bad target name `{name}`"));
                }
                let len: usize = match len.expect("checked above").parse() {
                    Ok(n) if n <= MAX_PAYLOAD => n,
                    Ok(n) => return malformed(format!("target payload {n} exceeds {MAX_PAYLOAD}")),
                    Err(_) => return malformed(format!("bad target length in `{frame}`")),
                };
                match read_body(reader, len)? {
                    Ok(payload) => targets.push((name.to_string(), payload)),
                    Err(reason) => return malformed(reason),
                }
            }
            Request::Check {
                app: app.to_string(),
                targets,
            }
        }
        _ => return malformed(format!("bad request line `{line}`")),
    };
    Ok(Ok(request))
}

/// Render one request onto the wire (the client side of
/// [`read_request`]).
///
/// # Errors
///
/// Propagates transport I/O failures.
pub fn write_request(writer: &mut impl Write, request: &Request) -> io::Result<()> {
    match request {
        Request::Check { app, targets } => {
            writeln!(writer, "check {app} {}", targets.len())?;
            for (name, payload) in targets {
                writeln!(writer, "target {name} {}", payload.len())?;
                writer.write_all(payload.as_bytes())?;
                writer.write_all(b"\n")?;
            }
        }
        Request::Apps => writer.write_all(b"apps\n")?,
        Request::Reload { app } => writeln!(writer, "reload {app}")?,
        Request::Stats => writer.write_all(b"stats\n")?,
        Request::Shutdown => writer.write_all(b"shutdown\n")?,
        Request::Sleep { ms } => writeln!(writer, "sleep {ms}")?,
    }
    writer.flush()
}

/// Collapse a multi-line failure message into the single line the
/// `error` response grammar allows.
fn one_line(message: &str) -> String {
    message.replace(['\n', '\r'], "; ")
}

/// Render one response onto the wire.
///
/// # Errors
///
/// Propagates transport I/O failures.
pub fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    match response {
        Response::Lines(lines) => {
            writeln!(writer, "ok {}", lines.len())?;
            for line in lines {
                debug_assert!(!line.contains('\n'), "info lines are single lines");
                writeln!(writer, "{}", one_line(line))?;
            }
        }
        Response::Reports(reports) => {
            writeln!(writer, "ok {}", reports.len())?;
            for (name, body) in reports {
                writeln!(writer, "report {name} {}", body.len())?;
                writer.write_all(body.as_bytes())?;
                writer.write_all(b"\n")?;
            }
        }
        Response::Busy => writer.write_all(b"busy\n")?,
        Response::Error(message) => writeln!(writer, "error {}", one_line(message))?,
    }
    writer.flush()
}

/// The `ok/busy/error` discriminant of a response, before the caller
/// reads the verb-specific payload.
enum Head {
    Ok(usize),
    Busy,
    Error(String),
}

fn read_head(reader: &mut impl BufRead) -> io::Result<Result<Head, String>> {
    let Some(line) = read_line(reader)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended before a response",
        ));
    };
    if line == "busy" {
        return Ok(Ok(Head::Busy));
    }
    if let Some(message) = line.strip_prefix("error ").or(match line.as_str() {
        "error" => Some(""),
        _ => None,
    }) {
        return Ok(Ok(Head::Error(message.to_string())));
    }
    if let Some(count) = line.strip_prefix("ok ") {
        return match count.parse::<usize>() {
            Ok(n) => Ok(Ok(Head::Ok(n))),
            Err(_) => Ok(Err(format!("bad response count `{count}`"))),
        };
    }
    Ok(Err(format!("bad response line `{line}`")))
}

/// Read an admin-verb response: `n` plain lines.
///
/// # Errors
///
/// Propagates transport I/O failures; protocol-level failures come back
/// as the inner `Err` (`busy` is reported as the literal message `busy`).
pub fn read_lines_response(reader: &mut impl BufRead) -> io::Result<Result<Vec<String>, String>> {
    match read_head(reader)? {
        Err(reason) => Ok(Err(reason)),
        Ok(Head::Busy) => Ok(Err("busy".to_string())),
        Ok(Head::Error(message)) => Ok(Err(format!("error: {message}"))),
        Ok(Head::Ok(count)) => {
            let mut lines = Vec::with_capacity(count);
            for _ in 0..count {
                match read_line(reader)? {
                    Some(line) => lines.push(line),
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended inside a response",
                        ))
                    }
                }
            }
            Ok(Ok(lines))
        }
    }
}

/// What a `check` round-trip produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckReply {
    /// Per-target report bodies, in request order.
    Reports(Vec<(String, String)>),
    /// The queue was full; nothing was checked.
    Busy,
}

/// Read a `check` response: `n` report frames, or `busy`.
///
/// # Errors
///
/// Propagates transport I/O failures; malformed responses and `error`
/// replies come back as the inner `Err`.
pub fn read_check_response(reader: &mut impl BufRead) -> io::Result<Result<CheckReply, String>> {
    match read_head(reader)? {
        Err(reason) => Ok(Err(reason)),
        Ok(Head::Busy) => Ok(Ok(CheckReply::Busy)),
        Ok(Head::Error(message)) => Ok(Err(format!("error: {message}"))),
        Ok(Head::Ok(count)) => {
            let mut reports = Vec::with_capacity(count);
            for _ in 0..count {
                let Some(frame) = read_line(reader)? else {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a response",
                    ));
                };
                let mut words = frame.split_whitespace();
                let (header, name, len) = (words.next(), words.next(), words.next());
                if header != Some("report") || name.is_none() || len.is_none() {
                    return Ok(Err(format!("bad report frame `{frame}`")));
                }
                let len: usize = match len.expect("checked above").parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err(format!("bad report length in `{frame}`"))),
                };
                match read_body(reader, len)? {
                    Ok(body) => reports.push((name.expect("checked above").to_string(), body)),
                    Err(reason) => return Ok(Err(reason)),
                }
            }
            Ok(Ok(CheckReply::Reports(reports)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(request: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, request).expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        read_request(&mut reader)
            .expect("read")
            .expect("not EOF")
            .expect("well-formed")
    }

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        for request in [
            Request::Check {
                app: "mysql".to_string(),
                targets: vec![
                    ("a.cnf".to_string(), "[mysqld]\nport = 3306\n".to_string()),
                    ("b.cnf".to_string(), String::new()),
                ],
            },
            Request::Apps,
            Request::Reload {
                app: "web".to_string(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Sleep { ms: 250 },
        ] {
            assert_eq!(round_trip(&request), request);
        }
    }

    #[test]
    fn payloads_with_embedded_frame_like_lines_survive_framing() {
        // Length-prefixed framing must not care what the payload contains.
        let request = Request::Check {
            app: "mysql".to_string(),
            targets: vec![(
                "tricky".to_string(),
                "target fake 999\ncheck mysql 5\nok 3\n".to_string(),
            )],
        };
        assert_eq!(round_trip(&request), request);
    }

    #[test]
    fn eof_between_requests_is_clean_but_mid_request_is_an_error() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(read_request(&mut reader).expect("clean EOF").is_none());

        let mut reader = BufReader::new(&b"check mysql 2\ntarget a 3\nxyz\n"[..]);
        let err = read_request(&mut reader).expect_err("EOF mid-request");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_requests_are_reported_without_io_errors() {
        for (wire, needle) in [
            (&b"verbless-nonsense\n"[..], "bad request line"),
            (&b"check mysql not-a-number\n"[..], "bad check count"),
            (
                &b"check mysql 1\nbogus frame here\n"[..],
                "bad target frame",
            ),
            (&b"check mysql 9999999\n"[..], "exceeds"),
            (&b"check mysql 1\ntarget a 99999999\n"[..], "exceeds"),
            (&b"sleep forever\n"[..], "bad sleep duration"),
            (&b"reload\n"[..], "bad request line"),
        ] {
            let mut reader = BufReader::new(wire);
            let result = read_request(&mut reader)
                .expect("no I/O error")
                .expect("not EOF");
            let reason = result.expect_err("malformed");
            assert!(reason.contains(needle), "`{reason}` lacks `{needle}`");
        }
    }

    #[test]
    fn responses_round_trip_for_both_shapes() {
        let reports = Response::Reports(vec![
            ("a.cnf".to_string(), "clean\n".to_string()),
            (
                "b.cnf".to_string(),
                "1. [type] x (score=1.0): y\n".to_string(),
            ),
        ]);
        let mut wire = Vec::new();
        write_response(&mut wire, &reports).expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        match read_check_response(&mut reader).expect("read").expect("ok") {
            CheckReply::Reports(got) => assert_eq!(
                got,
                vec![
                    ("a.cnf".to_string(), "clean\n".to_string()),
                    (
                        "b.cnf".to_string(),
                        "1. [type] x (score=1.0): y\n".to_string()
                    ),
                ]
            ),
            CheckReply::Busy => panic!("not busy"),
        }

        let lines = Response::Lines(vec!["requests 3".to_string(), "busy 0".to_string()]);
        let mut wire = Vec::new();
        write_response(&mut wire, &lines).expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_lines_response(&mut reader).expect("read").expect("ok"),
            vec!["requests 3".to_string(), "busy 0".to_string()]
        );

        let mut wire = Vec::new();
        write_response(&mut wire, &Response::Busy).expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_check_response(&mut reader).expect("read").expect("ok"),
            CheckReply::Busy
        );

        let mut wire = Vec::new();
        write_response(&mut wire, &Response::Error("multi\nline".to_string())).expect("write");
        let mut reader = BufReader::new(wire.as_slice());
        let reason = read_lines_response(&mut reader)
            .expect("read")
            .expect_err("error response");
        assert_eq!(reason, "error: multi; line");
    }

    #[test]
    fn token_validation_rejects_whitespace_and_empty() {
        assert!(valid_token("my.cnf"));
        assert!(valid_token("mysql-8"));
        assert!(!valid_token(""));
        assert!(!valid_token("two words"));
        assert!(!valid_token("tab\tbed"));
    }
}
