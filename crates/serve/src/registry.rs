//! The snapshot registry: named detectors loaded side by side, each
//! hot-reloaded independently.
//!
//! Every registered app owns a snapshot path, the detector built from it,
//! the file signature it was built from, and a per-app readiness bit.  A
//! failed reload is *contained*: the old detector keeps serving, the new
//! signature is remembered (no retry storm against the same bad file),
//! and only that app's readiness flips — the aggregate feeds `/readyz`
//! with one body line per app so an operator can see which tenant is
//! sick.  This generalizes the single-detector hot-reload contract of
//! [`encore::Watcher`] to a multi-tenant service.

use encore::{AnomalyDetector, DetectorSnapshot, FileSig};
use encore_model::AppKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One registered app.
#[derive(Debug)]
struct AppState {
    kind: AppKind,
    path: PathBuf,
    detector: Arc<AnomalyDetector>,
    /// Signature of the last snapshot *attempted* (successful or not).
    sig: Option<FileSig>,
    ready: bool,
    /// Successful reloads after the initial load.
    reloads: u64,
    last_error: Option<String>,
}

/// Point-in-time status of one app, for the `apps` verb and `/readyz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppStatus {
    /// Registry name (what clients pass to `check`).
    pub name: String,
    /// Application flavor of the detector.
    pub kind: AppKind,
    /// Serving with a current snapshot (false while the last reload or
    /// initial load is failing).
    pub ready: bool,
    /// Successful hot-reloads since registration.
    pub reloads: u64,
    /// Why the app is not ready, when it is not.
    pub last_error: Option<String>,
}

/// Named detectors with independent hot-reload.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    apps: Mutex<BTreeMap<String, AppState>>,
}

fn load_snapshot(path: &Path) -> Result<(AnomalyDetector, Option<FileSig>), String> {
    let sig = FileSig::of(path);
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let snapshot =
        DetectorSnapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((AnomalyDetector::from_snapshot(snapshot), sig))
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::default()
    }

    /// Register `name` by loading the snapshot at `path` strictly — a
    /// service must not start claiming apps it cannot serve.
    ///
    /// # Errors
    ///
    /// Returns the read/parse failure; the registry is unchanged.
    pub fn load(&self, name: &str, kind: AppKind, path: &Path) -> Result<(), String> {
        let (detector, sig) = load_snapshot(path)?;
        let mut apps = self.apps.lock().expect("registry poisoned");
        apps.insert(
            name.to_string(),
            AppState {
                kind,
                path: path.to_path_buf(),
                detector: Arc::new(detector),
                sig,
                ready: true,
                reloads: 0,
                last_error: None,
            },
        );
        Ok(())
    }

    /// The detector currently serving `name`, if registered.  Failed
    /// reloads keep the previous detector here — check-traffic keeps
    /// flowing while readiness reports the problem.
    pub fn detector(&self, name: &str) -> Option<(AppKind, Arc<AnomalyDetector>)> {
        let apps = self.apps.lock().expect("registry poisoned");
        apps.get(name)
            .map(|app| (app.kind, Arc::clone(&app.detector)))
    }

    /// Registered app names, sorted.
    pub fn names(&self) -> Vec<String> {
        let apps = self.apps.lock().expect("registry poisoned");
        apps.keys().cloned().collect()
    }

    /// Force a reload of `name` regardless of file signature (the
    /// `reload` admin verb).
    ///
    /// # Errors
    ///
    /// `Err` for an unknown app or a failed load; a failed load keeps the
    /// old detector serving and flips only this app's readiness.
    pub fn reload(&self, name: &str) -> Result<(), String> {
        self.reload_inner(name, true)
    }

    fn reload_inner(&self, name: &str, forced: bool) -> Result<(), String> {
        // Load outside the lock: a slow disk must not stall `detector()`
        // lookups for every other app.
        let path = {
            let apps = self.apps.lock().expect("registry poisoned");
            let Some(app) = apps.get(name) else {
                return Err(format!("unknown app `{name}`"));
            };
            if !forced && FileSig::of(&app.path) == app.sig {
                return Ok(());
            }
            app.path.clone()
        };
        let loaded = load_snapshot(&path);
        let mut apps = self.apps.lock().expect("registry poisoned");
        let Some(app) = apps.get_mut(name) else {
            return Err(format!("unknown app `{name}`"));
        };
        match loaded {
            Ok((detector, sig)) => {
                app.detector = Arc::new(detector);
                app.sig = sig;
                app.ready = true;
                app.reloads += 1;
                app.last_error = None;
                crate::obs::SNAPSHOT_RELOADS.incr();
                Ok(())
            }
            Err(error) => {
                // Remember the bad signature so the poll loop does not
                // retry the same broken file every interval; the old
                // detector keeps serving.
                app.sig = FileSig::of(&app.path);
                app.ready = false;
                app.last_error = Some(error.clone());
                crate::obs::RELOAD_FAILURES.incr();
                Err(error)
            }
        }
    }

    /// Reload every app whose snapshot file signature changed (the poll
    /// loop).  Returns the names that attempted a reload, successful or
    /// not.
    pub fn poll(&self) -> Vec<String> {
        let names = self.names();
        let mut touched = Vec::new();
        for name in names {
            let changed = {
                let apps = self.apps.lock().expect("registry poisoned");
                match apps.get(&name) {
                    Some(app) => FileSig::of(&app.path) != app.sig,
                    None => false,
                }
            };
            if changed {
                let _ = self.reload_inner(&name, true);
                touched.push(name);
            }
        }
        touched
    }

    /// Status of every app, sorted by name.
    pub fn statuses(&self) -> Vec<AppStatus> {
        let apps = self.apps.lock().expect("registry poisoned");
        apps.iter()
            .map(|(name, app)| AppStatus {
                name: name.clone(),
                kind: app.kind,
                ready: app.ready,
                reloads: app.reloads,
                last_error: app.last_error.clone(),
            })
            .collect()
    }

    /// Aggregate readiness plus a per-app body for `/readyz`: ready only
    /// when every registered app is ready (an empty registry is not a
    /// serving registry).
    pub fn ready(&self) -> (bool, String) {
        let statuses = self.statuses();
        let all_ready = !statuses.is_empty() && statuses.iter().all(|s| s.ready);
        let mut body = String::new();
        for status in &statuses {
            body.push_str(&format!(
                "{} {}\n",
                status.name,
                if status.ready { "ready" } else { "not-ready" }
            ));
        }
        if statuses.is_empty() {
            body.push_str("no apps registered\n");
        }
        (all_ready, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encore::{RuleSet, TrainingStats, TypeMap};

    fn empty_snapshot_text() -> String {
        AnomalyDetector::from_parts(
            RuleSet::default(),
            TypeMap::default(),
            TrainingStats::default(),
        )
        .snapshot()
        .render()
    }

    fn write_snapshot(dir: &Path, name: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, empty_snapshot_text()).expect("write snapshot");
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("encore-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn load_is_strict_but_reload_failures_are_contained() {
        let dir = temp_dir("contained");
        let registry = SnapshotRegistry::new();
        assert!(
            registry
                .load("mysql", AppKind::Mysql, &dir.join("missing.snap"))
                .is_err(),
            "initial load of a missing snapshot must fail"
        );
        assert!(registry.detector("mysql").is_none());

        let path = write_snapshot(&dir, "mysql.snap");
        registry
            .load("mysql", AppKind::Mysql, &path)
            .expect("valid snapshot loads");
        let (kind, detector) = registry.detector("mysql").expect("registered");
        assert_eq!(kind, AppKind::Mysql);
        let before = Arc::as_ptr(&detector);

        // Corrupt the file: the reload fails, readiness flips, but the
        // old detector keeps serving.
        std::fs::write(&path, "not a snapshot").expect("corrupt");
        assert!(registry.reload("mysql").is_err());
        let (ready, body) = registry.ready();
        assert!(!ready);
        assert_eq!(body, "mysql not-ready\n");
        let (_, detector) = registry.detector("mysql").expect("still serving");
        assert_eq!(Arc::as_ptr(&detector), before, "old detector retained");
        let status = &registry.statuses()[0];
        assert!(!status.ready);
        assert!(status.last_error.is_some());

        // Repairing the file and reloading recovers readiness.
        std::fs::write(&path, empty_snapshot_text()).expect("repair");
        registry.reload("mysql").expect("repaired snapshot loads");
        assert!(registry.ready().0);
        // Only successful reloads count: the failed one did not.
        assert_eq!(registry.statuses()[0].reloads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poll_reloads_only_signature_changes_and_failures_do_not_retry() {
        let dir = temp_dir("poll");
        let registry = SnapshotRegistry::new();
        let mysql = write_snapshot(&dir, "mysql.snap");
        let web = write_snapshot(&dir, "web.snap");
        registry
            .load("mysql", AppKind::Mysql, &mysql)
            .expect("load mysql");
        registry
            .load("web", AppKind::Apache, &web)
            .expect("load web");

        assert!(registry.poll().is_empty(), "unchanged files: no reloads");

        // Corrupt one app; the first poll attempts (and fails) it, the
        // second leaves the remembered bad signature alone.
        std::fs::write(&mysql, "garbage").expect("corrupt");
        assert_eq!(registry.poll(), vec!["mysql".to_string()]);
        assert!(registry.poll().is_empty(), "bad signature remembered");
        let (ready, body) = registry.ready();
        assert!(!ready);
        assert_eq!(body, "mysql not-ready\nweb ready\n");
        // The healthy app is untouched.
        assert!(registry.detector("web").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_registry_is_not_ready() {
        let registry = SnapshotRegistry::new();
        let (ready, body) = registry.ready();
        assert!(!ready);
        assert_eq!(body, "no apps registered\n");
    }
}
