//! `encore-serve`: a long-running multi-tenant detection service.
//!
//! The batch pipeline answers "is this fleet misconfigured *right now*";
//! this crate keeps the answer warm.  A [`SnapshotRegistry`] holds named
//! detectors — mysql, apache, php — loaded side by side from persisted
//! [`DetectorSnapshot`](encore::DetectorSnapshot) files, each hot-reloaded
//! independently when its file's [`FileSig`](encore::FileSig) changes; a
//! failing reload keeps the old detector serving and flips only that
//! app's readiness.  Clients speak a line-delimited protocol over a unix
//! socket ([`protocol`]): `check <app>` with length-prefixed config
//! payloads, answered with report bodies byte-identical to a direct
//! [`check_fleet`](encore::AnomalyDetector::check_fleet) call, plus the
//! admin verbs `apps`, `reload`, `stats`, and `shutdown`.
//!
//! Requests flow through a [`BoundedQueue`] with explicit backpressure —
//! a full queue answers `busy` instead of stacking latency — into a
//! single dispatcher feeding the work-stealing detection pool.  The
//! PR 8 telemetry surface is threaded through: `/metrics`, `/healthz`,
//! and a per-app `/readyz` over TCP, a JSONL heartbeat on the poll loop,
//! and a `serve` phase section of instruments ([`obs`]).
//!
//! See DESIGN.md §15 for the protocol grammar, registry lifecycle, and
//! backpressure contract.

pub mod client;
pub mod obs;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;

pub use client::Client;
pub use protocol::{CheckReply, Request, Response, MAX_PAYLOAD, MAX_TARGETS};
pub use queue::BoundedQueue;
pub use registry::{AppStatus, SnapshotRegistry};
pub use server::{ServeOptions, ServeStats, Server};
