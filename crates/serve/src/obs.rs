//! Serve-phase instruments and the service's scrape surface.
//!
//! The service appends one `serve` phase section to the core crate's
//! scrape roll-up, following the determinism discipline of DESIGN.md §9:
//! counters and histograms count protocol work (requests, targets,
//! rejections — identical for a given request stream), while anything
//! scheduling-dependent (queue depth at scrape time, wall-clock request
//! latency) is a gauge or timer-style histogram over microseconds.
//!
//! These instruments feed `/metrics` and the JSONL heartbeat only.  The
//! `stats` protocol verb is served from the plain atomic
//! [`ServeStats`](crate::server::ServeStats) counters instead, because
//! the obs sink no-ops when disabled and the verb must work regardless.

use encore_obs::{Counter, Gauge, Histogram, PhaseReport, PipelineReport};

/// Requests read off client connections (any verb, well-formed or not).
pub static REQUESTS: Counter = Counter::new("serve.requests");
/// `check` requests accepted into the queue.
pub static CHECKS: Counter = Counter::new("serve.checks");
/// Target payloads checked (sum of per-request target counts).
pub static TARGETS_CHECKED: Counter = Counter::new("serve.targets_checked");
/// Requests rejected with `busy` because the bounded queue was full.
pub static REJECTED_BUSY: Counter = Counter::new("serve.rejected_busy");
/// Requests answered with `error` (malformed, unknown app, failed admin).
pub static ERRORS: Counter = Counter::new("serve.errors");
/// Successful snapshot reloads across all registered apps.
pub static SNAPSHOT_RELOADS: Counter = Counter::new("serve.snapshot_reloads");
/// Failed snapshot reloads (the old detector kept serving).
pub static RELOAD_FAILURES: Counter = Counter::new("serve.reload_failures");
/// Queue depth when the last request was enqueued (point-in-time).
pub static QUEUE_DEPTH: Gauge = Gauge::new("serve.queue.depth");
/// Configured queue capacity.
pub static QUEUE_CAPACITY: Gauge = Gauge::new("serve.queue.capacity");
/// Registered apps.
pub static APPS: Gauge = Gauge::new("serve.apps");
/// Registered apps currently ready.
pub static APPS_READY: Gauge = Gauge::new("serve.apps_ready");
/// Event-log lines written since install (point-in-time view of the
/// writer thread, synced from [`encore_obs::event::health`] at scrape).
pub static EVENTS_WRITTEN: Gauge = Gauge::new("serve.events.written");
/// Event-log lines dropped (full queue or failed write) since install.
pub static EVENTS_DROPPED: Gauge = Gauge::new("serve.events.dropped");
/// Rendered event lines currently awaiting the writer thread.
pub static EVENTS_QUEUE_DEPTH: Gauge = Gauge::new("serve.events.queue_depth");

/// Latency bounds, microseconds: wire-speed admin verbs (tens of µs) up
/// to sub-minute fleet checks.  Millisecond buckets quantized every
/// admin verb into the first bucket; µs end to end restores resolution.
static LATENCY_BOUNDS_US: [u64; 15] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000, 30_000_000,
];
/// End-to-end time from dequeue to response, microseconds.
pub static REQUEST_DURATION: Histogram =
    Histogram::new("serve.request_duration_us", &LATENCY_BOUNDS_US);
/// Time a request waited in the queue before dispatch, microseconds.
pub static QUEUE_WAIT: Histogram = Histogram::new("serve.queue_wait_us", &LATENCY_BOUNDS_US);

/// Sync the event-log health gauges from the writer thread's counters;
/// called before every scrape/heartbeat snapshot so the exposition and
/// the JSONL delta both carry current log health.
pub fn sync_event_gauges() {
    let health = encore_obs::event::health();
    EVENTS_WRITTEN.set(health.written);
    EVENTS_DROPPED.set(health.dropped);
    EVENTS_QUEUE_DEPTH.set(health.queue_depth);
}

/// Snapshot of the `serve` phase.
pub fn serve_phase() -> PhaseReport {
    PhaseReport::new("serve")
        .counter(&REQUESTS)
        .counter(&CHECKS)
        .counter(&TARGETS_CHECKED)
        .counter(&REJECTED_BUSY)
        .counter(&ERRORS)
        .counter(&SNAPSHOT_RELOADS)
        .counter(&RELOAD_FAILURES)
        .gauge(&QUEUE_DEPTH)
        .gauge(&QUEUE_CAPACITY)
        .gauge(&APPS)
        .gauge(&APPS_READY)
        .gauge(&EVENTS_WRITTEN)
        .gauge(&EVENTS_DROPPED)
        .gauge(&EVENTS_QUEUE_DEPTH)
        .histogram(&REQUEST_DURATION)
        .histogram(&QUEUE_WAIT)
}

/// The service's scrape view: the core pipeline + daemon phases with the
/// `serve` section appended.
pub fn scrape_report() -> PipelineReport {
    sync_event_gauges();
    let mut report = encore::obs::scrape_report();
    report.phases.push(serve_phase());
    report
}

/// Bucket bounds for every histogram in [`scrape_report`].
pub fn histogram_bounds(name: &str) -> Option<&'static [u64]> {
    match name {
        "serve.request_duration_us" => Some(REQUEST_DURATION.bounds()),
        "serve.queue_wait_us" => Some(QUEUE_WAIT.bounds()),
        _ => encore::obs::histogram_bounds(name),
    }
}

/// Render the service scrape view in the Prometheus exposition format.
pub fn render_prometheus() -> String {
    encore_obs::expose::render(&scrape_report(), &histogram_bounds)
}

/// Reset every serve-phase instrument (tests only; a live service never
/// resets).
pub fn reset() {
    for counter in [
        &REQUESTS,
        &CHECKS,
        &TARGETS_CHECKED,
        &REJECTED_BUSY,
        &ERRORS,
        &SNAPSHOT_RELOADS,
        &RELOAD_FAILURES,
    ] {
        counter.reset();
    }
    for gauge in [
        &QUEUE_DEPTH,
        &QUEUE_CAPACITY,
        &APPS,
        &APPS_READY,
        &EVENTS_WRITTEN,
        &EVENTS_DROPPED,
        &EVENTS_QUEUE_DEPTH,
    ] {
        gauge.reset();
    }
    REQUEST_DURATION.reset();
    QUEUE_WAIT.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_report_appends_the_serve_phase() {
        let names: Vec<String> = scrape_report()
            .phases
            .iter()
            .map(|p| p.name.clone())
            .collect();
        assert_eq!(names.last().map(String::as_str), Some("serve"));
        assert!(
            names.iter().any(|n| n == "detect"),
            "core phases are retained: {names:?}"
        );
    }

    #[test]
    fn histogram_bounds_covers_serve_and_delegates_to_core() {
        for phase in &scrape_report().phases {
            for (name, snap) in &phase.histograms {
                let bounds = histogram_bounds(name)
                    .unwrap_or_else(|| panic!("no bounds registered for `{name}`"));
                assert_eq!(bounds.len() + 1, snap.counts.len(), "mismatch for `{name}`");
            }
        }
    }

    #[test]
    fn prometheus_rendering_validates_and_includes_serve_samples() {
        let text = render_prometheus();
        encore_obs::expose::validate(&text).expect("exposition validates");
        assert!(text.contains("# TYPE encore_serve_requests_total counter\n"));
        assert!(text.contains("encore_serve_request_duration_us_bucket{le=\"30000000\"}"));
        assert!(text.contains("encore_serve_events_written"));
    }
}
