//! In-process integration tests for the multi-tenant detection service:
//! byte-identity of served reports against a direct `check_fleet` call,
//! the bounded queue's `busy` backpressure contract, and per-app
//! readiness containment of failed hot-reloads.

use encore::prelude::*;
use encore::{AnomalyDetector, DetectorSnapshot, FleetOptions};
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use encore_serve::{CheckReply, Client, ServeOptions, Server, SnapshotRegistry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A unique, pre-cleaned temp directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-serve-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Train a small detector and persist its snapshot; returns the path.
fn train_snapshot(dir: &Path, name: &str, app: AppKind, seed: u64) -> PathBuf {
    let pop = Population::training(app, &PopulationOptions::new(8, seed));
    let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
    let detector = EnCore::learn(&training, &LearnOptions::default()).into_detector();
    let path = dir.join(name);
    std::fs::write(&path, detector.snapshot().render()).expect("write snapshot");
    path
}

fn load_detector(path: &Path) -> AnomalyDetector {
    let text = std::fs::read_to_string(path).expect("read snapshot");
    AnomalyDetector::from_snapshot(DetectorSnapshot::parse(&text).expect("snapshot parses"))
}

fn mysql_targets() -> Vec<(String, String)> {
    vec![
        (
            "clean.cnf".to_string(),
            "[mysqld]\nport = 3306\n".to_string(),
        ),
        (
            "odd.cnf".to_string(),
            "[mysqld]\nport = 99999\nmystery_knob = wat\n".to_string(),
        ),
    ]
}

fn apache_targets() -> Vec<(String, String)> {
    vec![(
        "httpd.conf".to_string(),
        "Listen 80\nServerName example.test\n".to_string(),
    )]
}

/// The reports a direct `check_fleet` call renders for these payloads —
/// the byte-identity oracle for the served responses.
fn direct_reports(
    detector: &AnomalyDetector,
    app: AppKind,
    targets: &[(String, String)],
    workers: Option<usize>,
) -> Vec<(String, String)> {
    let images: Vec<_> = targets
        .iter()
        .map(|(name, payload)| encore::watch::target_image(app, name, payload))
        .collect();
    let results = detector.check_fleet(app, &images, &FleetOptions { workers });
    targets
        .iter()
        .zip(results)
        .map(|((name, _), result)| (name.clone(), result.expect("assembles").render()))
        .collect()
}

#[test]
fn concurrent_clients_get_reports_byte_identical_to_check_fleet() {
    let dir = scratch_dir("identity");
    let mysql_snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 11);
    let web_snap = train_snapshot(&dir, "web.snap", AppKind::Apache, 22);

    let registry = SnapshotRegistry::new();
    registry
        .load("mysql", AppKind::Mysql, &mysql_snap)
        .expect("load mysql");
    registry
        .load("web", AppKind::Apache, &web_snap)
        .expect("load web");

    let workers = Some(2);
    let mut options = ServeOptions::new(dir.join("serve.sock"));
    options.workers = workers;
    let server = Server::start(registry, options).expect("server starts");
    let socket = server.socket().to_path_buf();

    let expected_mysql = direct_reports(
        &load_detector(&mysql_snap),
        AppKind::Mysql,
        &mysql_targets(),
        workers,
    );
    let expected_web = direct_reports(
        &load_detector(&web_snap),
        AppKind::Apache,
        &apache_targets(),
        workers,
    );

    // Four concurrent clients, two per app, several requests each: every
    // response must be byte-identical to the direct call.
    let mut handles = Vec::new();
    for i in 0..4 {
        let socket = socket.clone();
        let (app, targets, expected) = if i % 2 == 0 {
            ("mysql", mysql_targets(), expected_mysql.clone())
        } else {
            ("web", apache_targets(), expected_web.clone())
        };
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            for _ in 0..3 {
                match client.check(app, &targets).expect("check") {
                    CheckReply::Reports(got) => assert_eq!(got, expected),
                    CheckReply::Busy => panic!("queue of 16 never fills here"),
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Admin surface over the same socket.
    let mut admin = Client::connect(&socket).expect("connect admin");
    let apps = admin.apps().expect("apps verb");
    assert_eq!(
        apps,
        vec![
            "mysql mysql ready reloads=0".to_string(),
            "web apache ready reloads=0".to_string(),
        ]
    );
    let stats = admin.stats().expect("stats verb");
    assert!(
        stats.contains(&"checks 12".to_string()),
        "12 accepted checks: {stats:?}"
    );
    assert!(
        stats.contains(&"targets_checked 18".to_string()),
        "2 mysql clients x 3 x 2 targets + 2 web clients x 3 x 1: {stats:?}"
    );
    assert!(stats.contains(&"rejected_busy 0".to_string()), "{stats:?}");

    // The shutdown verb stops the service; join returns and the socket
    // file is unlinked.
    admin.shutdown().expect("shutdown verb");
    server.join();
    assert!(!socket.exists(), "socket unlinked on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_answers_busy_without_blocking() {
    let dir = scratch_dir("busy");
    let snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 5);
    let registry = SnapshotRegistry::new();
    registry
        .load("mysql", AppKind::Mysql, &snap)
        .expect("load mysql");

    let mut options = ServeOptions::new(dir.join("serve.sock"));
    options.queue_capacity = 1;
    let mut server = Server::start(registry, options).expect("server starts");
    let socket = server.socket().to_path_buf();

    // Occupy the single dispatcher with a sleep job; once it has been
    // dequeued (the dispatcher was idle, so this is immediate — the wait
    // is pure margin), a queued check fills the capacity-1 queue and the
    // next request must get `busy` instantly.
    let occupant = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            client.sleep(700).expect("sleep verb")
        })
    };
    std::thread::sleep(Duration::from_millis(200));

    let queued = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            client.check("mysql", &mysql_targets()).expect("check")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let mut rejected = Client::connect(&socket).expect("connect");
    let started = std::time::Instant::now();
    match rejected.check("mysql", &mysql_targets()).expect("check") {
        CheckReply::Busy => {}
        CheckReply::Reports(_) => panic!("third request must be rejected"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "busy must not wait for the sleeping dispatcher"
    );

    // The occupant and the queued check both still complete.
    assert_eq!(
        occupant.join().expect("occupant"),
        Some(vec!["slept 700".to_string()])
    );
    match queued.join().expect("queued client") {
        CheckReply::Reports(reports) => assert_eq!(reports.len(), 2),
        CheckReply::Busy => panic!("the queued check had a slot"),
    }

    let stats = rejected.stats().expect("stats verb");
    assert!(
        stats.contains(&"rejected_busy 1".to_string()),
        "exactly the third request was rejected: {stats:?}"
    );
    assert!(stats.contains(&"queue_capacity 1".to_string()), "{stats:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP/1.0 GET: returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn failed_reload_flips_one_app_while_the_other_keeps_serving() {
    let dir = scratch_dir("readiness");
    let mysql_snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 7);
    let web_snap = train_snapshot(&dir, "web.snap", AppKind::Apache, 8);
    let good_web = std::fs::read_to_string(&web_snap).expect("read web snapshot");

    let registry = SnapshotRegistry::new();
    registry
        .load("mysql", AppKind::Mysql, &mysql_snap)
        .expect("load mysql");
    registry
        .load("web", AppKind::Apache, &web_snap)
        .expect("load web");

    let mut options = ServeOptions::new(dir.join("serve.sock"));
    options.metrics_addr = Some("127.0.0.1:0".to_string());
    options.poll_interval = Duration::from_millis(40);
    options.heartbeat_path = Some(dir.join("heartbeat.jsonl"));
    let mut server = Server::start(registry, options).expect("server starts");
    let socket = server.socket().to_path_buf();
    let metrics = server.metrics_addr().expect("metrics enabled");

    // Healthy start: both apps ready, /readyz 200 with one line per app.
    let (status, body) = http_get(metrics, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "mysql ready\nweb ready\n");

    // Corrupt web's snapshot; a forced reload fails, keeps the old
    // detector serving, and flips only web's readiness.
    std::fs::write(&web_snap, "definitely not a snapshot").expect("corrupt");
    let mut admin = Client::connect(&socket).expect("connect");
    let err = admin.reload("web").expect_err("reload of a bad snapshot");
    assert!(err.to_string().contains("web.snap"), "{err}");

    let (status, body) = http_get(metrics, "/readyz");
    assert!(status.contains("503"), "{status}");
    assert_eq!(body, "mysql ready\nweb not-ready\n");
    let apps = admin.apps().expect("apps verb");
    assert!(
        apps.iter().any(|l| l.starts_with("web apache not-ready")),
        "{apps:?}"
    );

    // Both apps still answer checks: mysql is untouched, web serves the
    // retained pre-corruption detector.
    for (app, targets) in [("mysql", mysql_targets()), ("web", apache_targets())] {
        match admin.check(app, &targets).expect("check") {
            CheckReply::Reports(reports) => assert_eq!(reports.len(), targets.len()),
            CheckReply::Busy => panic!("idle service"),
        }
    }

    // Repairing the file recovers via the background poller alone — the
    // signature change is picked up without an explicit reload verb.
    std::fs::write(&web_snap, &good_web).expect("repair");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http_get(metrics, "/readyz");
        if status.contains("200") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "poller never recovered readiness"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The scrape carries the serve phase, and the heartbeat wrote
    // parseable JSONL deltas.
    let (_, scrape) = http_get(metrics, "/metrics");
    assert!(
        scrape.contains("# TYPE encore_serve_requests_total counter"),
        "serve phase exposed"
    );
    server.stop();
    let heartbeat = std::fs::read_to_string(dir.join("heartbeat.jsonl")).expect("heartbeat");
    assert!(
        heartbeat.lines().count() > 0,
        "poller wrote heartbeat lines"
    );
    for (i, line) in heartbeat.lines().enumerate() {
        encore::obs::PipelineReport::parse_json(line)
            .unwrap_or_else(|e| panic!("heartbeat line {}: {e}", i + 1));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_apps_and_malformed_requests_get_errors() {
    let dir = scratch_dir("errors");
    let snap = train_snapshot(&dir, "mysql.snap", AppKind::Mysql, 3);
    let registry = SnapshotRegistry::new();
    registry
        .load("mysql", AppKind::Mysql, &snap)
        .expect("load mysql");
    let mut server =
        Server::start(registry, ServeOptions::new(dir.join("serve.sock"))).expect("starts");
    let socket = server.socket().to_path_buf();

    // Unknown app: a protocol-level error on a connection that stays
    // usable for the next request.
    let mut client = Client::connect(&socket).expect("connect");
    let err = client
        .check("postgres", &mysql_targets())
        .expect_err("unregistered app");
    assert!(err.to_string().contains("unknown app"), "{err}");
    assert!(client.apps().is_ok(), "connection survives an app error");

    // A malformed verb line: the server answers `error` and closes.
    use std::os::unix::net::UnixStream;
    let mut raw = UnixStream::connect(&socket).expect("connect raw");
    raw.write_all(b"gibberish request\n").expect("send");
    let mut response = String::new();
    raw.read_to_string(&mut response).expect("read to close");
    assert!(
        response.starts_with("error "),
        "malformed request answered: {response}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
