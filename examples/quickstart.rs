//! Quickstart: train EnCore on a synthetic MySQL fleet and check a broken
//! system — the Figure 1(b) scenario (datadir owned by the wrong user).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use encore_sysimage::SystemImage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A training fleet — the stand-in for crawling EC2 images.
    let fleet = Population::training(AppKind::Mysql, &PopulationOptions::new(60, 42));
    println!("training on {} MySQL images ...", fleet.images().len());

    // 2. Assemble (parse + infer types + integrate environment) and learn.
    let training = TrainingSet::assemble(AppKind::Mysql, fleet.images())?;
    let engine = EnCore::learn(&training, &LearnOptions::default());
    println!("learned {} correlation rules, e.g.:", engine.rules().len());
    for rule in engine.rules().rules().iter().take(5) {
        println!("    {rule}");
    }

    // 3. A target system with the paper's Figure 1(b) error: the datadir
    //    is owned by `backup`, but the server runs as `mysql`.
    let target: SystemImage = SystemImage::builder("target")
        .user("mysql", 27, &["mysql"])
        .user("backup", 34, &["backup"])
        .dir("/var/lib/mysql", "backup", "backup", 0o700)
        .file(
            "/etc/mysql/my.cnf",
            "root",
            "root",
            0o644,
            "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\nmax_allowed_packet = 16M\n",
        )
        .build();

    // 4. Detect.
    let report = engine.check_image(AppKind::Mysql, &target)?;
    println!("\n{} warnings for the target system:", report.len());
    for (i, w) in report.warnings().iter().enumerate().take(8) {
        println!("  {:>2}. {w}", i + 1);
    }
    assert!(
        report.detects("datadir"),
        "the ownership violation must surface"
    );
    println!(
        "\ndatadir misconfiguration detected at rank {:?}",
        report.rank_of("datadir")
    );
    Ok(())
}
