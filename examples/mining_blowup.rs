//! Reproduce Finding 3 (§2.2): off-the-shelf frequent-item-set mining does
//! not scale on environment-enriched configuration data, while EnCore's
//! type-guided template search stays fast.
//!
//! ```text
//! cargo run --release --example mining_blowup
//! ```

use encore::prelude::*;
use encore_assemble::Assembler;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_mining::{discretize, FpGrowth, MiningLimits};
use encore_model::AppKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = Population::training(AppKind::Mysql, &PopulationOptions::new(60, 11));
    let dataset = Assembler::new().assemble_training_set(AppKind::Mysql, fleet.images());
    let tx = discretize(&dataset);
    println!(
        "assembled {} systems, {} attributes, {} binomial items",
        dataset.num_rows(),
        dataset.num_attributes(),
        tx.num_items()
    );

    // Off-the-shelf: FP-Growth with a resource guard standing in for the
    // paper's 16 GB testbed.
    for min_support_pct in [20, 10, 5] {
        let min_support = (dataset.num_rows() * min_support_pct / 100).max(2);
        let started = Instant::now();
        match FpGrowth::new(min_support).mine(&tx, &MiningLimits::capped(2_000_000)) {
            Ok(result) => println!(
                "FP-Growth @ {min_support_pct:>2}% support: {:>9} item sets in {:?}",
                result.len(),
                started.elapsed()
            ),
            Err(oom) => println!(
                "FP-Growth @ {min_support_pct:>2}% support: OOM after {} item sets ({:?})",
                oom.itemsets_produced,
                started.elapsed()
            ),
        }
    }

    // EnCore: type-guided template instantiation over the same data.
    let training = TrainingSet::assemble(AppKind::Mysql, fleet.images())?;
    let started = Instant::now();
    let engine = EnCore::learn(&training, &LearnOptions::default());
    println!(
        "EnCore templates:          {:>9} rules     in {:?}",
        engine.rules().len(),
        started.elapsed()
    );
    Ok(())
}
