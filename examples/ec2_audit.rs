//! Audit a fleet of fresh images with rules learned from a training
//! population — the §7.1.3 experiment in miniature: EnCore surprisingly
//! finds misconfigurations in public template images.
//!
//! ```text
//! cargo run --release --example ec2_audit
//! ```

use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppKind::Php;
    let training_fleet = Population::training(app, &PopulationOptions::new(80, 5));
    let training = TrainingSet::assemble(app, training_fleet.images())?;
    let engine = EnCore::learn(&training, &LearnOptions::default());
    println!(
        "learned {} rules from {} training images",
        engine.rules().len(),
        training.len()
    );

    // 40 fresh images, ~20% of which carry a seeded misconfiguration.
    let fresh = Population::ec2_fresh(app, 40, 17);
    println!(
        "auditing {} fresh images ({} seeded errors hidden among them)\n",
        fresh.images().len(),
        fresh.seeded().len()
    );

    let mut flagged_images = 0;
    let mut found = 0;
    for image in fresh.images() {
        let report = engine.check_image(app, image)?;
        let significant: Vec<_> = report
            .warnings()
            .iter()
            .filter(|w| w.score() >= 10.0)
            .collect();
        if significant.is_empty() {
            continue;
        }
        flagged_images += 1;
        let seeded_here: Vec<_> = fresh
            .seeded()
            .iter()
            .filter(|s| s.image_id == image.id())
            .collect();
        for s in &seeded_here {
            if report.detects(&s.entry) {
                found += 1;
                println!(
                    "{}: found seeded {} error on `{}` (rank {:?})",
                    image.id(),
                    s.category,
                    s.entry,
                    report.rank_of(&s.entry)
                );
            }
        }
        if seeded_here.is_empty() {
            println!(
                "{}: {} significant warnings (top: {})",
                image.id(),
                significant.len(),
                significant[0]
            );
        }
    }
    println!(
        "\naudit complete: {flagged_images} images flagged, {found}/{} seeded errors found",
        fresh.seeded().len()
    );
    Ok(())
}
