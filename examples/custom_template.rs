//! Customization (§5.3): user-defined types via a customization file and a
//! user-supplied rule template, exactly the extension path Figure 6 shows.
//!
//! ```text
//! cargo run --release --example custom_template
//! ```

use encore::customize;
use encore::prelude::*;
use encore::template::Template;
use encore_assemble::Assembler;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

const CUSTOMIZATION: &str = "\
# EnCore customization file (Figure 6 format)
$$TypeDeclaration
SharedObject : PartialFilePath
$$TypeInference
SharedObject : suffix:.so
$$Template
[A:Size] < [B:Size] -- 95%
[A:FilePath] => [B:UserName]
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let custom = customize::parse(CUSTOMIZATION)?;
    println!(
        "customization file: {} custom types, {} templates",
        custom.types.len(),
        custom.templates.len()
    );

    // Custom types plug into the assembler with priority over predefined
    // ones.
    let mut assembler = Assembler::new();
    for ty in custom.types {
        assembler = assembler.with_custom_type(ty);
    }

    // User templates replace the predefined set for this learning run —
    // here we learn only size-orderings (with a stricter 95% confidence)
    // and ownership rules.
    let mut templates: Vec<Template> = custom.templates;
    templates.push(Template::parse("[A:UserName] in [B:GroupName]")?);

    let fleet = Population::training(AppKind::Php, &PopulationOptions::new(60, 3));
    let training = TrainingSet::assemble_with(&assembler, AppKind::Php, fleet.images())?;
    let engine = EnCore::learn(
        &training,
        &LearnOptions {
            templates,
            ..LearnOptions::default()
        },
    );
    println!(
        "learned {} rules from the custom template set:",
        engine.rules().len()
    );
    for rule in engine.rules() {
        println!("    {rule}");
    }
    Ok(())
}
