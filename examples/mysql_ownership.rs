//! The paper's Figure 1 end-to-end: both motivating real-world failures,
//! detected with rules learned from a synthetic EC2-like population.
//!
//! * Figure 1(a): PHP `extension_dir` points at a regular file — invisible
//!   to value comparison (paths vary), caught through environment typing.
//! * Figure 1(b): MySQL `datadir` not owned by the configured `user` —
//!   caught through the learned ownership correlation rule.
//!
//! ```text
//! cargo run --release --example mysql_ownership
//! ```

use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_corpus::realworld;
use encore_model::AppKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for case_id in [2usize, 3] {
        let case = realworld::all_cases(7)
            .into_iter()
            .find(|c| c.id == case_id)
            .expect("case exists");
        println!("== case {}: {}", case.id, case.description);
        println!("   info required: {}", case.info);

        let n = match case.app {
            AppKind::Mysql => 120,
            _ => 80,
        };
        let fleet = Population::training(case.app, &PopulationOptions::new(n, 99));
        let training = TrainingSet::assemble(case.app, fleet.images())?;
        let engine = EnCore::learn(&training, &LearnOptions::default());
        let report = engine.check_image(case.app, &case.image)?;

        match report.rank_of(case.culprit) {
            Some(rank) => println!(
                "   detected `{}` at rank {rank} of {} warnings",
                case.culprit,
                report.len()
            ),
            None => println!("   MISSED (report had {} warnings)", report.len()),
        }
        if let Some(w) = report.warnings().first() {
            println!("   top warning: {w}");
        }
        println!();
    }
    Ok(())
}
