//! EnCore reproduction — umbrella crate.
//!
//! This workspace reproduces *EnCore: Exploiting System Environment and
//! Correlation Information for Misconfiguration Detection* (ASPLOS 2014)
//! as a Rust library suite.  This umbrella crate re-exports every
//! subsystem and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`encore`] (the detector), [`encore_corpus`] (synthetic
//! image populations), and the `tables` binary in `encore-bench` (the
//! evaluation harness).
//!
//! # Examples
//!
//! ```
//! use encore::prelude::*;
//! use encore_corpus::genimage::{Population, PopulationOptions};
//! use encore_model::AppKind;
//!
//! let fleet = Population::training(AppKind::Mysql, &PopulationOptions::new(25, 7));
//! let training = TrainingSet::assemble(AppKind::Mysql, fleet.images())?;
//! let engine = EnCore::learn(&training, &LearnOptions::default());
//! assert!(!engine.rules().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use encore;
pub use encore_assemble;
pub use encore_corpus;
pub use encore_injector;
pub use encore_mining;
pub use encore_model;
pub use encore_parser;
pub use encore_sysimage;
