//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so
//! `#[derive(serde::Serialize, serde::Deserialize)]` annotations compile
//! without a crates registry.  Marker traits of the same names are defined
//! alongside (traits and derive macros live in separate namespaces), so
//! `T: serde::Serialize` bounds also resolve — though no impls are
//! generated, keeping any real serialization honest about the shim.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
