//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64.  Sequences are
//! deterministic across platforms and runs (which is all the corpus
//! generator and fault injector require) but are **not** bit-compatible
//! with the real `rand` crate's `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range
/// (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a single value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A value uniformly distributed in `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs, but keep the guard for clarity.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine in this shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn uniformish_coverage() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
