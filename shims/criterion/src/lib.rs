//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros) as a plain timing loop: warm up once, run `sample_size` timed
//! samples, report min/median/mean per benchmark on stdout.  No statistics
//! engine, no plotting — enough to compare implementations locally without
//! a crates registry.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` calls of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy init
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for source compatibility; this shim times a fixed number of
    /// samples rather than a wall-clock budget.
    pub fn measurement_time(&mut self, _budget: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo-bench passes `--bench` plus any user filter; treat the first
        // non-flag argument as a substring filter, ignore the rest.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: 20,
            };
            f(&mut bencher);
            report(id, &bencher.samples);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Bundle benchmark functions into a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}
