//! Case generation and execution.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Real proptest defaults to 256; this workspace's properties are
        // heavier per case (population generation, mining), so stay lighter
        // while still exceeding any boundary the invariants care about.
        Config { cases: 64 }
    }
}

/// Deterministic per-case RNG: the same case index always replays the same
/// inputs, so failures are reproducible without persistence files.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x70_72_6f_70_74_65_73_74u64 ^ (case.wrapping_mul(0x9E37_79B9)))
}

/// Deepest shrink level tried after a failure.  Each level halves range
/// spans and collection sizes, so level 6 already reduces spans 64×.
const MAX_SHRINK_LEVEL: u32 = 6;

/// Generates and executes cases for one property.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// A runner with the given config.
    pub fn new(config: Config) -> TestRunner {
        TestRunner { config }
    }

    /// Run `test` against `config.cases` generated values; panics on the
    /// first failing case, labelled with its case number.
    ///
    /// On failure the case is *shrunk*: regenerated at increasing shrink
    /// levels (halved ranges, truncated collections) from the same
    /// deterministic seed, and the smallest input that still fails is
    /// reported before the original panic propagates.
    pub fn run<S: Strategy>(&mut self, strategy: &S, test: impl Fn(S::Value))
    where
        S::Value: std::fmt::Debug,
    {
        for case in 0..u64::from(self.config.cases) {
            let mut rng = case_rng(case);
            let value = strategy.generate(&mut rng);
            let mut smallest = format!("{value:?}");
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                for level in 1..=MAX_SHRINK_LEVEL {
                    let shrunk = strategy.generate_shrunk(&mut case_rng(case), level);
                    let rendered = format!("{shrunk:?}");
                    if catch_unwind(AssertUnwindSafe(|| test(shrunk))).is_err() {
                        smallest = rendered;
                    }
                }
                eprintln!(
                    "proptest shim: case {case}/{} failed (deterministic; rerun reproduces it)",
                    self.config.cases
                );
                eprintln!("proptest shim: smallest failing input: {smallest}");
                resume_unwind(panic);
            }
        }
    }
}
