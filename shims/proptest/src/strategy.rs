//! The [`Strategy`] trait and the built-in strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree; `generate` produces a value
/// directly from the RNG.  Shrinking is approximated by
/// [`Strategy::generate_shrunk`]: regenerating the same case at increasing
/// *shrink levels*, where each level halves integer/float spans toward the
/// range start and truncates collections — the runner keeps the deepest
/// level that still fails and reports that value as the smallest failure.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Generate a *shrunk* value: the same recipe with every range span
    /// halved `level` times (minimum width 1) and collection sizes
    /// truncated likewise.  Level 0 must behave exactly like
    /// [`Strategy::generate`].  The default keeps full size — strategies
    /// without a natural "smaller" (patterns, selections) may keep it.
    fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> Self::Value {
        let _ = level;
        self.generate(rng)
    }

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }

    fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> O {
        (self.f)(self.inner.generate_shrunk(rng, level))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> $t {
                let shift = level.min(<$t>::BITS - 1);
                // Halve the span toward the start, keeping width ≥ 1; a
                // range too wide for the subtraction (spanning the whole
                // signed domain) is left unshrunk.
                match self.end.checked_sub(self.start) {
                    Some(span) if span > 0 => {
                        let width = std::cmp::max(1, span >> shift);
                        rng.gen_range(self.start..self.start + width)
                    }
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> $t {
                let shift = level.min(<$t>::BITS - 1);
                match self.end().checked_sub(*self.start()) {
                    Some(span) => {
                        let width = span >> shift;
                        rng.gen_range(*self.start()..=*self.start() + width)
                    }
                    None => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        // 53 uniform bits in [0, 1), scaled into the half-open range.
        let unit = (rng.gen_range(0u64..(1u64 << 53))) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }

    fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> f64 {
        let unit = (rng.gen_range(0u64..(1u64 << 53))) as f64 / (1u64 << 53) as f64;
        let span = (self.end - self.start) / (1u64 << level.min(52)) as f64;
        self.start + unit * span
    }
}

/// `&str` patterns: a tiny subset of regex — sequences of literal characters
/// and `[class]` groups, each optionally followed by `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng, 0)
    }

    fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> String {
        generate_pattern(self, rng, level)
    }
}

/// Implement [`Strategy`] for tuples of strategies, one arity per line.
macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> Self::Value {
                ($(self.$idx.generate_shrunk(rng, level),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

fn generate_pattern(pattern: &str, rng: &mut StdRng, level: u32) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                + i;
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier `{n}` or `{m,n}`.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        // Shrinking halves the quantifier span toward its minimum.
        let span = (hi - lo) >> level.min(usize::BITS - 1);
        let count = if span == 0 {
            lo
        } else {
            rng.gen_range(lo..=lo + span)
        };
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// Expand a character-class body (`a-z0-9_`) into its member characters.
fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in `{pattern}`");
            for c in lo..=hi {
                members.push(c);
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    assert!(!members.is_empty(), "empty character class in `{pattern}`");
    members
}
