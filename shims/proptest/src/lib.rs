//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map`, strategies for
//! integer/float ranges, simple `[class]{m,n}` string patterns, tuples,
//! [`collection::vec`], [`option::of`], [`sample::select`], and the
//! [`proptest!`]/[`prop_assert!`] macro family.
//!
//! Semantics are simplified: cases are generated from a fixed deterministic
//! seed sequence, and a failing case panics with its case number.  Shrinking
//! is *minimal* rather than tree-based: the failing case is regenerated at
//! increasing shrink levels (integer/float spans halved toward the range
//! start, collections truncated), and the smallest still-failing input is
//! reported before the original panic propagates.  That is enough to
//! exercise the invariants and debug failures; swap the real proptest back
//! in when a crates registry is available.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> Vec<S::Value> {
            let n = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            // Truncate the length toward the minimum, and shrink elements.
            let n = self.size.start + ((n - self.size.start) >> level.min(usize::BITS - 1));
            (0..n)
                .map(|_| self.element.generate_shrunk(rng, level))
                .collect()
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option`s.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(value)` with probability one half, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u8..2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }

        fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> Option<S::Value> {
            if rng.gen_range(0u8..2) == 0 {
                None
            } else {
                Some(self.inner.generate_shrunk(rng, level))
            }
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing one of a fixed set of values.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Choose uniformly from `items` (which must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }

        fn generate_shrunk(&self, rng: &mut StdRng, level: u32) -> T {
            // "Smaller" for a selection is an earlier item.
            let n = std::cmp::max(1, self.items.len() >> level.min(usize::BITS - 1));
            self.items[rng.gen_range(0..n)].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access mirroring proptest's `prop::` namespace.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Assert inside a property (panics; no failure persistence).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(&strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_respects_classes() {
        let mut rng = crate::test_runner::case_rng(3);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&"[a-z][a-z0-9_]{2,14}", &mut rng);
            assert!((3..=15).contains(&s.len()), "{s}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn space_to_tilde_class_covers_printable_ascii() {
        let mut rng = crate::test_runner::case_rng(4);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&"[ -~]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires strategies to arguments.
        #[test]
        fn macro_generates_cases(x in 0usize..10, v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!(x < 10);
            prop_assert!((1..=3).contains(&v));
        }
    }

    proptest! {
        /// Default-config form also parses.
        #[test]
        fn vec_sizes_in_range(xs in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn shrunk_ranges_collapse_toward_start() {
        let mut rng = crate::test_runner::case_rng(9);
        for _ in 0..50 {
            let x = (0usize..1000).generate_shrunk(&mut rng, 6);
            assert!(x < 16, "{x}");
            let y = (10u64..=1010).generate_shrunk(&mut rng, 6);
            assert!((10..=25).contains(&y), "{y}");
            let f = (0.0f64..64.0).generate_shrunk(&mut rng, 6);
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn shrunk_collections_truncate_and_shrink_elements() {
        let mut rng = crate::test_runner::case_rng(11);
        for _ in 0..50 {
            let v = crate::collection::vec(0u8..100, 0..9).generate_shrunk(&mut rng, 6);
            assert!(v.len() <= 1, "{v:?}");
            assert!(v.iter().all(|&e| e < 2), "{v:?}");
            let s = crate::strategy::Strategy::generate_shrunk(&"[a-z]{2,66}", &mut rng, 6);
            assert!((2..=3).contains(&s.len()), "{s}");
        }
    }

    #[test]
    fn shrink_level_zero_matches_generate() {
        let strategy = (0usize..1000, "[a-z]{0,10}");
        let a = strategy.generate(&mut crate::test_runner::case_rng(5));
        let b = strategy.generate_shrunk(&mut crate::test_runner::case_rng(5), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn failing_property_still_panics_after_shrinking() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(16));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run(&(0usize..1000,), |(x,)| assert!(x < 2, "too big: {x}"));
        }));
        assert!(result.is_err());
    }
}
