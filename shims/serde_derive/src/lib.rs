//! Offline stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(serde::Serialize, serde::Deserialize)]`
//! markers but nothing in-tree serializes yet; with no crates registry
//! available, these derives expand to nothing so the annotations stay in
//! place for the day a real `serde` is swapped back in.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
