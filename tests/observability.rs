//! End-to-end pipeline observability: one small collection → assembly →
//! inference → detection run with the sink enabled must produce a
//! [`encore::obs::PipelineReport`] carrying all six phase sections with
//! plausible counts, and the report must survive a JSON round-trip.

use encore::obs;
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use std::sync::{Mutex, MutexGuard};

/// The sink and metric statics are process-global; serialize the tests in
/// this binary that toggle or read them.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn end_to_end_run_populates_all_six_phases() {
    let _gate = gate();
    obs::reset();
    obs::enable();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(15, 3));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let engine = EnCore::learn(&training, &LearnOptions::default());
    let target = pop.images()[0].clone();
    let _report = engine
        .check_image(AppKind::Mysql, &target)
        .expect("target checks");
    let report = obs::pipeline_report();
    obs::disable();

    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["collect", "assemble", "infer", "stats", "filter", "detect"]
    );

    let counters = report.counters();
    for (name, expect_nonzero) in [
        ("collect.images.built", true),
        ("collect.vfs.nodes", true),
        ("assemble.parse.entries", true),
        ("assemble.rows.assembled", true),
        ("assemble.augment.attrs", true),
        ("infer.templates.instantiated", true),
        ("infer.units.total", true),
        ("infer.pairs.evaluated", true),
        ("infer.candidates.emitted", true),
        ("infer.pool.units_run", true),
        ("stats.cache.attributes", true),
        ("detect.systems.checked", true),
        ("assemble.parse.errors", false),
    ] {
        let value = *counters
            .get(name)
            .unwrap_or_else(|| panic!("counter `{name}` missing from report"));
        if expect_nonzero {
            assert!(value > 0, "counter `{name}` should be nonzero");
        } else {
            assert_eq!(value, 0, "counter `{name}` should be zero");
        }
    }
    // Every candidate got exactly one filter verdict.
    let verdicts = counters["filter.accepted"]
        + counters["filter.rejected.support"]
        + counters["filter.rejected.confidence"]
        + counters["filter.rejected.entropy"];
    assert!(verdicts > 0, "filter judged some candidates");

    let parsed = obs::PipelineReport::parse_json(&report.render_json()).expect("report parses");
    assert_eq!(parsed, report);

    let text = report.render_text();
    for phase in names {
        assert!(text.contains(&format!("phase {phase}")), "{text}");
    }
}

#[test]
fn disabled_sink_leaves_the_report_empty() {
    let _gate = gate();
    obs::reset();
    obs::disable();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(8, 4));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let _engine = EnCore::learn(&training, &LearnOptions::default());
    let report = obs::pipeline_report();
    assert_eq!(report.phases.len(), 6, "sections are present even when off");
    assert!(
        report.counters().values().all(|&v| v == 0),
        "disabled sink must record nothing: {}",
        report.render_text()
    );
}
