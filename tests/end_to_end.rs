//! Cross-crate integration tests: the full pipeline from image generation
//! through assembly, rule learning, and anomaly detection, for every
//! evaluated application.

use encore::baseline::{Baseline, BaselineEnv};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_corpus::realworld;
use encore_injector::Injector;
use encore_model::AppKind;
use encore_parser::LensRegistry;

fn training(app: AppKind, n: usize, seed: u64) -> (Population, TrainingSet) {
    let pop = Population::training(app, &PopulationOptions::new(n, seed));
    let ts = TrainingSet::assemble(app, pop.images()).expect("assembles");
    (pop, ts)
}

#[test]
fn every_app_trains_and_learns_rules() {
    for app in AppKind::EVALUATED {
        let (_, ts) = training(app, 40, 1);
        assert_eq!(ts.len(), 40, "{app}");
        let engine = EnCore::learn(&ts, &LearnOptions::default());
        assert!(
            engine.rules().len() >= 5,
            "{app}: only {} rules",
            engine.rules().len()
        );
        // Rule statistics are self-consistent.
        for rule in engine.rules() {
            assert!(rule.support > 0, "{app}: {rule}");
            assert!((0.0..=1.0).contains(&rule.confidence), "{app}: {rule}");
        }
    }
}

#[test]
fn clean_in_distribution_images_raise_no_high_confidence_correlations() {
    for app in AppKind::EVALUATED {
        let (pop, ts) = training(app, 40, 2);
        let engine = EnCore::learn(&ts, &LearnOptions::default());
        // Check a training member itself: perfect-confidence rules cannot
        // fire on data they were learned from.
        let report = engine.check_image(app, &pop.images()[0]).expect("check");
        for w in report.warnings() {
            if let Some(rule) = w.rule() {
                assert!(
                    rule.confidence < 1.0,
                    "{app}: perfect rule violated on its own training image: {w}"
                );
            }
        }
    }
}

#[test]
fn ownership_misconfiguration_detected_per_app() {
    // The Figure 1(b) shape, generalized: break the ownership coupling of
    // each app's coupled path and expect a correlation violation.
    let case = realworld::all_cases(3)
        .into_iter()
        .find(|c| c.id == 3)
        .unwrap();
    let (_, ts) = training(AppKind::Mysql, 60, 3);
    let engine = EnCore::learn(&ts, &LearnOptions::default());
    let report = engine.check_image(case.app, &case.image).expect("check");
    assert_eq!(report.rank_of("datadir"), Some(1), "{report:?}");
}

#[test]
fn injected_errors_detected_better_by_encore_than_baselines() {
    let app = AppKind::Mysql;
    let (pop, ts) = training(app, 60, 4);
    let engine = EnCore::learn(&ts, &LearnOptions::default());
    let baseline = Baseline::train(app, pop.images()).unwrap();
    let baseline_env = BaselineEnv::train(app, pop.images()).unwrap();

    let target = Population::training(app, &PopulationOptions::new(1, 999)).images()[0].clone();
    let registry = LensRegistry::with_defaults();
    let lens = registry.lens(app.name()).unwrap();
    let config = target.read_file(app.config_path()).unwrap().to_string();
    let (broken_text, injections) = Injector::with_seed(5)
        .inject(lens.as_ref(), &config, 10)
        .unwrap();
    let mut vfs = target.vfs().clone();
    vfs.add_file(app.config_path(), "root", "root", 0o644, &broken_text);
    let broken = target.with_vfs(vfs);

    let detected = |report: &Report| {
        injections
            .iter()
            .filter(|inj| {
                report.warnings().iter().any(|w| {
                    w.score() >= 10.0
                        && (w.implicates(&inj.entry) || w.implicates(&inj.entry_after))
                })
            })
            .count()
    };
    let d_encore = detected(&engine.check_image(app, &broken).unwrap());
    let d_base = detected(&baseline.check_image(app, &broken).unwrap());
    let d_env = detected(&baseline_env.check_image(app, &broken).unwrap());
    assert!(
        d_encore >= d_env && d_env >= d_base,
        "EnCore {d_encore} vs Baseline+Env {d_env} vs Baseline {d_base}"
    );
    assert!(d_encore > d_base, "EnCore must beat the baseline");
}

#[test]
fn real_world_cases_match_paper_detectability() {
    // Train one engine per app at small scale, then check every case:
    // paper-detected cases must be detected, and case #8 must stay missed.
    let mut engines = Vec::new();
    for app in AppKind::EVALUATED {
        let n = match app {
            AppKind::Mysql => 80,
            _ => 60,
        };
        let (_, ts) = training(app, n, 6);
        engines.push((app, EnCore::learn(&ts, &LearnOptions::default())));
    }
    let mut detected = 0;
    let mut missed = Vec::new();
    for case in realworld::all_cases(20140301) {
        let engine = &engines.iter().find(|(a, _)| *a == case.app).unwrap().1;
        let report = engine.check_image(case.app, &case.image).expect("check");
        match report.rank_of(case.culprit) {
            Some(_) => detected += 1,
            None => missed.push(case.id),
        }
    }
    // Paper: 9 of 10 detected; #8 missed (no hardware info in training).
    assert!(missed.contains(&8), "case 8 must be missed: {missed:?}");
    assert!(
        detected >= 8,
        "at least 8 of 10 cases detected, got {detected} (missed {missed:?})"
    );
}

#[test]
fn seeded_population_errors_found() {
    let app = AppKind::Mysql;
    let (_, ts) = training(app, 60, 7);
    let engine = EnCore::learn(&ts, &LearnOptions::default());
    let fresh = Population::ec2_fresh(app, 40, 8);
    assert!(!fresh.seeded().is_empty());
    let mut found = 0;
    for seeded in fresh.seeded() {
        let image = fresh
            .images()
            .iter()
            .find(|i| i.id() == seeded.image_id)
            .unwrap();
        let report = engine.check_image(app, image).expect("check");
        if report.detects(&seeded.entry) {
            found += 1;
        }
    }
    assert!(
        found * 2 >= fresh.seeded().len(),
        "found {found} of {} seeded errors",
        fresh.seeded().len()
    );
}

#[test]
fn learned_rules_are_reusable_across_targets() {
    // "Since the checking and the learning are cleanly separated, the
    // learned rules can be reused to check different systems" (§3).
    let app = AppKind::Php;
    let (_, ts) = training(app, 40, 9);
    let engine = EnCore::learn(&ts, &LearnOptions::default());
    let targets = Population::training(app, &PopulationOptions::new(5, 10));
    for img in targets.images() {
        let r1 = engine.check_image(app, img).expect("check");
        let r2 = engine.check_image(app, img).expect("check again");
        assert_eq!(r1, r2, "detection must be deterministic");
    }
}

#[test]
fn table_shapes_hold_at_reduced_scale() {
    use encore_bench::experiments::{self, ExperimentConfig};
    let config = ExperimentConfig::scaled(0.25);

    // Table 8: EnCore detects more than the baselines; the paper's headline
    // is a 1.6x-3.5x improvement over value comparison.
    let t8 = experiments::table_8(&config);
    let mut ratios = Vec::new();
    for app in ["apache", "mysql", "php"] {
        let row = t8.values(app).expect(app);
        let (base, env, encore) = (row[1], row[2], row[3]);
        assert!(encore >= env, "{app}: EnCore {encore} < Baseline+Env {env}");
        assert!(encore > base, "{app}: EnCore {encore} <= Baseline {base}");
        ratios.push(encore / base.max(1.0));
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg >= 1.3, "mean improvement {avg} too small");

    // Table 2: attribute counts grow monotonically through the pipeline.
    let t2 = experiments::table_2(&config);
    let orig = t2.values("Original").unwrap().to_vec();
    let aug = t2.values("Augmented").unwrap().to_vec();
    let bin = t2.values("Binominal").unwrap().to_vec();
    for i in 0..3 {
        assert!(orig[i] < aug[i], "augmentation must add attributes");
        assert!(aug[i] <= bin[i], "discretization must not shrink");
    }

    // Table 13: the entropy filter removes many false rules and few true
    // ones.
    let t13 = experiments::table_13(&config);
    for app in ["apache", "mysql", "php"] {
        let row = t13.values(app).expect(app);
        let (original, fp_reduced, fn_introduced) = (row[0], row[1], row[2]);
        assert!(fp_reduced + fn_introduced <= original);
        assert!(
            fn_introduced <= fp_reduced,
            "{app}: filter removed more true rules than false ones"
        );
    }
}
