//! Fixture-driven acceptance tests for the static analysis layer: a corpus
//! with seeded defects must be flagged with the stable `EC0xx` codes and a
//! failing exit status, while the predefined templates plus a cleanly
//! learned rule set must produce zero error-severity diagnostics.

use encore::prelude::*;
use encore::{StatsCache, TypeMap};
use encore_check::{check_all, Code, LintReport, Severity};
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::{AppKind, AttrName, ConfigValue, Dataset, Row, SemType};

fn mysql_training() -> TrainingSet {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(20, 7));
    TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles")
}

#[test]
fn seeded_defects_are_flagged_with_stable_codes() {
    let training = mysql_training();
    let cache = training.stats_cache();

    // Seed the template list with an ill-typed template (Owns over Size
    // slots) and a well-typed but dead one (no Url attributes in a MySQL
    // corpus), alongside the clean predefined set.
    let mut templates = Template::predefined();
    templates.push(Template::new(
        SemType::Size,
        Relation::Owns,
        SemType::UserName,
    ));
    templates.push(Template::new(SemType::Url, Relation::Equal, SemType::Url));

    // Seed the rule set with a contradictory ordering pair and an orphan.
    let existing: Vec<&AttrName> = cache
        .attributes()
        .iter()
        .filter(|a| {
            matches!(
                cache.type_of(a),
                SemType::Number | SemType::PortNumber | SemType::Size
            )
        })
        .take(2)
        .collect();
    assert!(existing.len() >= 2, "corpus has numeric attributes");
    let (x, y) = (existing[0].clone(), existing[1].clone());
    let mut rules = RuleSet::new();
    rules.push(Rule::new(x.clone(), Relation::LessNum, y.clone(), 10, 1.0));
    rules.push(Rule::new(y, Relation::LessNum, x, 10, 1.0));
    rules.push(Rule::new(
        AttrName::entry("no_such_entry"),
        Relation::Equal,
        AttrName::entry("also_missing"),
        10,
        1.0,
    ));

    let report = check_all(
        &templates,
        &FilterThresholds::default(),
        &cache,
        Some(&rules),
    );

    for code in [
        Code::IllTypedTemplate,
        Code::DeadTemplateNoSlots,
        Code::ContradictoryOrdering,
        Code::OrphanRule,
    ] {
        assert!(
            report.with_code(code).count() > 0,
            "expected {code} in:\n{}",
            report.render_text()
        );
    }
    // Each defect is error-severity, so the run must fail.
    assert!(report.has_errors());
    assert_eq!(report.exit_code(false), 1);
    assert_eq!(report.exit_code(true), 1);
}

#[test]
fn seeded_transitive_ordering_cycle_is_flagged_ec060() {
    // Three ordering rules over real corpus attributes forming A < B < C < A:
    // every pair is individually satisfiable (so EC020 stays quiet), but the
    // set admits no assignment — the transitive cycle check must flag it.
    let training = mysql_training();
    let cache = training.stats_cache();
    let numeric: Vec<AttrName> = cache
        .attributes()
        .iter()
        .filter(|a| {
            matches!(
                cache.type_of(a),
                SemType::Number | SemType::PortNumber | SemType::Size
            )
        })
        .take(3)
        .cloned()
        .collect();
    assert!(numeric.len() >= 3, "corpus has three numeric attributes");
    let mut rules = RuleSet::new();
    for (a, b) in [(0, 1), (1, 2), (2, 0)] {
        rules.push(Rule::new(
            numeric[a].clone(),
            Relation::LessNum,
            numeric[b].clone(),
            10,
            1.0,
        ));
    }

    let report = check_all(
        &Template::predefined(),
        &FilterThresholds::default(),
        &cache,
        Some(&rules),
    );
    let cycles: Vec<_> = report.with_code(Code::OrderingCycle).collect();
    assert_eq!(cycles.len(), 1, "{}", report.render_text());
    assert_eq!(cycles[0].severity, Severity::Error);
    assert!(
        report.with_code(Code::ContradictoryOrdering).count() == 0,
        "no pairwise contradiction was seeded:\n{}",
        report.render_text()
    );
    assert_eq!(report.exit_code(false), 1);
}

#[test]
fn conflicting_owners_with_row_evidence_is_an_error() {
    // Hand-built corpus where two user-typed entries genuinely differ, so
    // two Owns rules claiming the same path for each are contradictory.
    let mut ds = Dataset::new();
    for i in 0..4 {
        let mut row = Row::new(format!("s{i}"));
        row.set(AttrName::entry("run_user"), ConfigValue::str("mysql"));
        row.set(AttrName::entry("backup_user"), ConfigValue::str("backup"));
        row.set(
            AttrName::entry("datadir"),
            ConfigValue::path("/var/lib/mysql"),
        );
        ds.push_row(row);
    }
    let mut types = TypeMap::new();
    types.set(AttrName::entry("run_user"), SemType::UserName);
    types.set(AttrName::entry("backup_user"), SemType::UserName);
    types.set(AttrName::entry("datadir"), SemType::FilePath);
    let cache = StatsCache::new(ds, &types);

    let mut rules = RuleSet::new();
    rules.push(Rule::new(
        AttrName::entry("datadir"),
        Relation::Owns,
        AttrName::entry("run_user"),
        4,
        1.0,
    ));
    rules.push(Rule::new(
        AttrName::entry("datadir"),
        Relation::Owns,
        AttrName::entry("backup_user"),
        4,
        1.0,
    ));

    let diags = encore_check::lint_rules(&rules, Some(&cache));
    let conflict: Vec<_> = diags
        .iter()
        .filter(|d| d.code == Code::ConflictingOwners)
        .collect();
    assert_eq!(conflict.len(), 1, "{diags:?}");
    assert_eq!(conflict[0].severity, Severity::Error);
    assert!(
        conflict[0].message.contains("mysql") && conflict[0].message.contains("backup"),
        "evidence names the differing values: {}",
        conflict[0].message
    );
}

#[test]
fn clean_templates_and_learned_rules_have_zero_errors() {
    let training = mysql_training();
    let cache = training.stats_cache();
    let engine = EnCore::learn(&training, &LearnOptions::default());
    let report: LintReport = check_all(
        &Template::predefined(),
        &FilterThresholds::default(),
        &cache,
        Some(engine.rules()),
    );
    assert_eq!(
        report.errors(),
        0,
        "clean inputs must produce zero error-severity diagnostics:\n{}",
        report.render_text()
    );
    assert_eq!(report.exit_code(false), 0);
}
