//! Live telemetry end to end: the `/readyz` readiness flag tracking
//! detector hot-reload health, monotone Prometheus scrapes over a running
//! watcher, and the guarantee that attaching a scrape surface never
//! changes the per-cycle JSONL reports.

use encore::obs;
use encore::obs::expose::{self, Readiness};
use encore::obs::PipelineReport;
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// The observability sink and its metric statics are process-global;
/// every test in this binary toggles or reads them, so they serialize on
/// this gate (the harness runs tests on parallel threads).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn small_detector() -> AnomalyDetector {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(12, 7));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    EnCore::learn(&training, &LearnOptions::default()).into_detector()
}

/// The value of an exposition sample (no labels), e.g.
/// `sample_value(&text, "encore_watch_cycles_total")`.
fn sample_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(|v| v.parse().expect("sample value parses"))
    })
}

#[test]
fn readyz_flips_on_failed_hot_reload_while_the_old_detector_serves() {
    let _gate = gate();
    obs::reset();
    obs::enable();
    let detector = small_detector();
    let good_snapshot = detector.snapshot().render();
    let dir = scratch_dir("telemetry-readyz");
    // Dotfile: the snapshot lives in the watch dir without being a target.
    let snapshot_path = dir.join(".detector.snap");
    std::fs::write(&snapshot_path, &good_snapshot).unwrap();
    let target = dir.join("a.cnf");
    std::fs::write(&target, "[mysqld]\nport = 3306\n").unwrap();

    let readiness = Arc::new(Readiness::new());
    let mut options = WatchOptions::new(AppKind::Mysql, &dir);
    options.detector_path = Some(snapshot_path.clone());
    options.readiness = Some(Arc::clone(&readiness));
    let mut watcher = Watcher::new(detector, options);
    assert!(!readiness.get(), "not ready before the first cycle");

    let first = watcher.cycle().expect("cycle 1");
    assert!(first.ready && readiness.get(), "ready after a clean cycle");

    // A bad deploy: the snapshot file is replaced with garbage.  The
    // watcher must keep serving with the old detector but advertise
    // not-ready so an orchestrator stops routing new work to it.
    std::thread::sleep(std::time::Duration::from_millis(20));
    std::fs::write(&snapshot_path, "not a snapshot at all\n").unwrap();
    std::fs::write(&target, "[mysqld]\nport = 3307\nold_unknown_key = 1\n").unwrap();
    let second = watcher.cycle().expect("cycle 2");
    assert!(!second.reloaded_detector);
    assert!(
        second.reload_error.is_some(),
        "the parse failure is surfaced"
    );
    assert!(!second.ready, "failing reload makes the watcher not-ready");
    assert!(!readiness.get(), "/readyz now answers 503");
    assert_eq!(second.results.len(), 1, "the old detector still serves");
    assert!(
        second.results[0].1.is_ok(),
        "the changed target is checked with the previous rules"
    );

    // Nothing changed on disk: no retry storm, still not ready.
    let third = watcher.cycle().expect("cycle 3");
    assert!(third.reload_error.is_none(), "bad file is not re-parsed");
    assert!(!third.ready && !readiness.get(), "not-ready latches");

    // The fixed deploy lands: ready again on the successful reload.
    std::thread::sleep(std::time::Duration::from_millis(20));
    std::fs::write(&snapshot_path, format!("{good_snapshot}\n# fixed\n")).unwrap();
    let fourth = watcher.cycle().expect("cycle 4");
    assert!(fourth.reloaded_detector, "good snapshot hot-reloads");
    assert!(fourth.ready && readiness.get(), "recovery flips ready back");
    assert_eq!(obs::WATCH_SNAPSHOT_RELOADS.get(), 1);
    obs::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prometheus_scrapes_of_a_running_watcher_are_monotone() {
    let _gate = gate();
    obs::reset();
    obs::enable();
    let dir = scratch_dir("telemetry-scrape");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(dir.join("b.cnf"), "[mysqld]\nport = 3307\n").unwrap();
    let mut watcher = Watcher::new(small_detector(), WatchOptions::new(AppKind::Mysql, &dir));

    let mut last_cycles = 0.0;
    let mut last_checked = 0.0;
    for round in 1..=3u64 {
        watcher.cycle().expect("cycle");
        let scrape = obs::render_prometheus();
        expose::validate(&scrape).unwrap_or_else(|e| panic!("scrape {round}: {e}"));
        let cycles = sample_value(&scrape, "encore_watch_cycles_total").expect("cycles sample");
        let checked =
            sample_value(&scrape, "encore_watch_targets_checked_total").expect("checked sample");
        assert_eq!(cycles, round as f64, "cumulative across cycles");
        assert!(cycles >= last_cycles && checked >= last_checked, "monotone");
        (last_cycles, last_checked) = (cycles, checked);
        // The daemon histogram observes exactly one duration per cycle.
        let durations =
            sample_value(&scrape, "encore_watch_cycle_duration_ms_count").expect("duration count");
        assert_eq!(durations, round as f64);
    }
    assert_eq!(obs::WATCH_CYCLES.get(), 3);
    assert_eq!(last_checked, 2.0, "both targets checked once, first cycle");
    obs::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Run a fixed three-cycle watch script (add two targets, change one,
/// quiet cycle) and return the parsed JSONL reports.  When `scrape` is
/// set, `/metrics` is rendered between cycles exactly as a live scraper
/// would — which must not perturb the per-cycle reports.
fn watch_script(tag: &str, scrape: bool) -> Vec<PipelineReport> {
    obs::reset();
    obs::enable();
    let dir = scratch_dir(tag);
    let report_path = dir.join(".trace.jsonl");
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(dir.join("b.cnf"), "[mysqld]\nport = 3307\n").unwrap();
    let mut options = WatchOptions::new(AppKind::Mysql, &dir);
    options.report_path = Some(report_path.clone());
    options.workers = Some(1);
    let mut watcher = Watcher::new(small_detector(), options);

    watcher.cycle().expect("cycle 1");
    if scrape {
        expose::validate(&obs::render_prometheus()).expect("scrape 1");
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    std::fs::write(
        dir.join("b.cnf"),
        "[mysqld]\nport = 3307\nmax_connections = 100\n",
    )
    .unwrap();
    watcher.cycle().expect("cycle 2");
    if scrape {
        expose::validate(&obs::render_prometheus()).expect("scrape 2");
    }
    watcher.cycle().expect("cycle 3");
    if scrape {
        expose::validate(&obs::render_prometheus()).expect("scrape 3");
    }
    obs::disable();

    let trace = std::fs::read_to_string(&report_path).expect("trace written");
    let reports = trace
        .lines()
        .map(|line| PipelineReport::parse_json(line).expect("line parses"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

#[test]
fn concurrent_scraping_never_changes_the_jsonl_reports() {
    let _gate = gate();
    let plain = watch_script("telemetry-jsonl-plain", false);
    let scraped = watch_script("telemetry-jsonl-scraped", true);
    assert_eq!(plain.len(), 3);
    assert_eq!(scraped.len(), 3);
    for (cycle, (p, s)) in plain.iter().zip(&scraped).enumerate() {
        // Counters and histograms are deterministic per cycle (timers and
        // wall-clock gauges are not; the delta policy treats those as
        // informational for the same reason).
        assert_eq!(
            p.counters(),
            s.counters(),
            "cycle {}: scraping changed the counter section",
            cycle + 1
        );
        assert_eq!(
            p.histograms(),
            s.histograms(),
            "cycle {}: scraping changed the histogram section",
            cycle + 1
        );
    }
    assert_eq!(plain[0].counters()["detect.watch.targets_added"], 2);
    assert_eq!(plain[1].counters()["detect.watch.targets_changed"], 1);
    assert_eq!(plain[2].counters()["detect.watch.targets_rechecked"], 0);
}
