//! Property-based tests over the core invariants (proptest).

use encore_mining::{entropy, Apriori, FpGrowth, MiningLimits, Transactions};
use encore_model::{AttrName, ConfigValue, Dataset, Row, SemType};
use encore_parser::{IniLens, KeyValue, Lens, SshdLens};
use proptest::prelude::*;

/// Strategy: plausible configuration keys.
fn key_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{2,14}".prop_map(|s| s)
}

/// Strategy: values without newlines/comment markers.
fn value_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_/.]{1,20}"
}

proptest! {
    /// INI lens round-trip: parse(render(pairs)) == pairs.
    #[test]
    fn ini_round_trip(pairs in proptest::collection::vec(
        (key_strategy(), value_strategy()), 0..20
    )) {
        let lens = IniLens::mysql();
        let kvs: Vec<KeyValue> = pairs
            .into_iter()
            .map(|(k, v)| KeyValue::new(k, v))
            .collect();
        let rendered = lens.render(&kvs);
        let back = lens.parse(&rendered).expect("rendered config parses");
        prop_assert_eq!(back, kvs);
    }

    /// sshd lens round-trip.
    #[test]
    fn sshd_round_trip(pairs in proptest::collection::vec(
        (key_strategy(), value_strategy()), 0..20
    )) {
        let lens = SshdLens::new();
        let kvs: Vec<KeyValue> = pairs
            .into_iter()
            .map(|(k, v)| KeyValue::new(k, v))
            .collect();
        let rendered = lens.render(&kvs);
        let back = lens.parse(&rendered).expect("rendered config parses");
        prop_assert_eq!(back, kvs);
    }

    /// Apriori and FP-Growth agree on every input.
    #[test]
    fn apriori_equals_fpgrowth(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..10, 0..6),
            0..12
        ),
        min_support in 1usize..4
    ) {
        let mut tx = Transactions::new();
        for row in &rows {
            let items: Vec<String> = row.iter().map(|i| format!("i{i}")).collect();
            tx.push(items.iter().map(String::as_str));
        }
        let mut a = Apriori::new(min_support)
            .mine(&tx, &MiningLimits::unbounded())
            .expect("apriori");
        let mut f = FpGrowth::new(min_support)
            .mine(&tx, &MiningLimits::unbounded())
            .expect("fpgrowth");
        a.canonicalize();
        f.canonicalize();
        prop_assert_eq!(a, f);
    }

    /// Shannon entropy is bounded: 0 <= H <= ln(n).
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(1usize..100, 1..20)) {
        let n = counts.len() as f64;
        let h = entropy(counts);
        prop_assert!(h >= -1e-12, "H = {h}");
        prop_assert!(h <= n.ln() + 1e-9, "H = {h} > ln({n})");
    }

    /// Entropy is maximal for uniform distributions.
    #[test]
    fn entropy_uniform_is_max(n in 2usize..20, c in 1usize..50) {
        let uniform = entropy(std::iter::repeat_n(c, n));
        prop_assert!((uniform - (n as f64).ln()).abs() < 1e-9);
    }

    /// Size parsing respects unit multipliers.
    #[test]
    fn size_parse_multiplier(mag in 1u64..1000, unit in prop::sample::select(vec!["K", "M", "G"])) {
        let v = ConfigValue::parse_size(&format!("{mag}{unit}")).expect("parses");
        let mult = match unit {
            "K" => 1u64 << 10,
            "M" => 1 << 20,
            _ => 1 << 30,
        };
        prop_assert_eq!(v.as_bytes(), Some(mag * mult));
    }

    /// AttrName display/parse round-trips for augmented attributes.
    #[test]
    fn attr_name_round_trip(base in "[a-z][a-z_]{1,12}", suffix in "[a-z]{2,8}") {
        let attr = AttrName::entry(&base).augmented(&suffix);
        let parsed = AttrName::parse(&attr.to_string()).expect("parses");
        prop_assert_eq!(parsed.base(), base.as_str());
        prop_assert_eq!(parsed.suffix(), Some(suffix.as_str()));
    }

    /// Dataset support never exceeds the row count, and histograms sum to
    /// the support.
    #[test]
    fn dataset_support_invariants(values in proptest::collection::vec(
        proptest::option::of("[a-z]{1,4}"), 1..30
    )) {
        let mut ds = Dataset::new();
        let attr = AttrName::entry("x");
        for (i, v) in values.iter().enumerate() {
            let mut row = Row::new(format!("s{i}"));
            if let Some(s) = v {
                row.set(attr.clone(), ConfigValue::str(s.clone()));
            }
            ds.push_row(row);
        }
        let support = ds.support(&attr);
        prop_assert!(support <= ds.num_rows());
        let hist_total: usize = ds.value_histogram(&attr).values().sum();
        prop_assert_eq!(hist_total, support);
    }

    /// Type inference always lands on a priority type, and trivial
    /// fall-back never panics.
    #[test]
    fn type_inference_total(value in "[ -~]{0,30}") {
        let img = encore_sysimage::SystemImage::builder("p").build();
        let inference = encore_assemble::TypeInference::new();
        let ty = inference.infer(&value, &img);
        prop_assert!(SemType::PRIORITY.contains(&ty));
    }

    /// Injection always changes the config and keeps it parseable.
    #[test]
    fn injection_changes_and_parses(seed in 0u64..500) {
        let config = "[mysqld]\nuser = mysql\ndatadir = /var/lib/mysql\nmax_allowed_packet = 16M\nport = 3306\n";
        let lens = IniLens::mysql();
        let (broken, injections) = encore_injector::Injector::with_seed(seed)
            .inject(&lens, config, 2)
            .expect("injects");
        prop_assert_eq!(injections.len(), 2);
        prop_assert_ne!(broken.as_str(), config);
        lens.parse(&broken).expect("still parses");
    }

    /// Raising filter thresholds never admits more rules (monotonicity).
    #[test]
    fn filter_monotonicity(support in 1usize..20, confidence in 0.0f64..1.0) {
        use encore::filter::{judge, FilterThresholds, Verdict};
        use encore::stats::StatsCache;
        use encore::types::TypeMap;
        let mut ds = Dataset::new();
        for i in 0..20 {
            let mut r = Row::new(format!("s{i}"));
            r.set(AttrName::entry("a"), ConfigValue::str(format!("v{i}")));
            r.set(AttrName::entry("b"), ConfigValue::str(format!("w{}", i % 5)));
            ds.push_row(r);
        }
        let stats = StatsCache::new(ds, &TypeMap::new());
        let lax = FilterThresholds {
            min_support_fraction: 0.05,
            min_confidence: 0.5,
            entropy_threshold: 0.1,
            use_entropy: true,
        };
        let strict = FilterThresholds {
            min_support_fraction: 0.5,
            min_confidence: 0.95,
            entropy_threshold: 0.9,
            use_entropy: true,
        };
        let a = AttrName::entry("a");
        let b = AttrName::entry("b");
        let lax_verdict = judge(&lax, &stats, &a, &b, support, confidence, None);
        let strict_verdict = judge(&strict, &stats, &a, &b, support, confidence, None);
        // If strict accepts, lax must accept too.
        if strict_verdict == Verdict::Accept {
            prop_assert_eq!(lax_verdict, Verdict::Accept);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Population generation is deterministic in its seed and always yields
    /// parseable configurations.
    #[test]
    fn population_determinism(seed in 0u64..50) {
        use encore_corpus::genimage::{Population, PopulationOptions};
        use encore_model::AppKind;
        let a = Population::training(AppKind::Php, &PopulationOptions::new(3, seed));
        let b = Population::training(AppKind::Php, &PopulationOptions::new(3, seed));
        for (x, y) in a.images().iter().zip(b.images()) {
            prop_assert_eq!(x.read_file("/etc/php.ini"), y.read_file("/etc/php.ini"));
        }
        let registry = encore_parser::LensRegistry::with_defaults();
        for img in a.images() {
            registry
                .parse("php", img.read_file("/etc/php.ini").expect("config"))
                .expect("parses");
        }
    }
}
