//! Regression: parallel rule inference must be invisible in the output.
//!
//! The work-stealing pool may execute `(template, a-chunk)` units in any
//! order on any number of workers; the merged candidate stream — and
//! therefore the learned `RuleSet`, its rendering, and the inference
//! statistics — must be byte-identical to the sequential (`workers = 1`)
//! reference for every fleet.

use encore::infer::{InferOptions, RuleInference};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use proptest::prelude::*;

#[test]
fn work_stealing_ruleset_is_identical_to_sequential() {
    let engine = RuleInference::predefined();
    for app in [AppKind::Mysql, AppKind::Apache] {
        for seed in [11u64, 47] {
            let pop = Population::training(app, &PopulationOptions::new(40, seed));
            let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
            let thresholds = FilterThresholds::default();
            let (reference, ref_stats) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(1))
                .expect("sequential inference");
            for workers in [2usize, 8] {
                let (rules, stats) = engine
                    .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                    .expect("parallel inference");
                let ctx = format!("app={app:?} seed={seed} workers={workers}");
                assert_eq!(rules, reference, "{ctx}");
                assert_eq!(rules.render(), reference.render(), "{ctx}");
                assert_eq!(stats, ref_stats, "{ctx}");
            }
        }
    }
}

#[test]
fn learn_is_deterministic_across_worker_counts() {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 5));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let sequential = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(1),
            ..LearnOptions::default()
        },
    );
    let parallel = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(4),
            ..LearnOptions::default()
        },
    );
    assert_eq!(
        sequential.rules().render(),
        parallel.rules().render(),
        "EnCore::learn must not depend on the worker count"
    );
    assert_eq!(sequential.stats(), parallel.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dead-unit pruning consults the presence bitsets to skip
    /// `(template, a-chunk)` units that cannot instantiate anything; the
    /// learned rules, their rendering, and the inference statistics must be
    /// byte-identical to the unpruned reference at every worker count, for
    /// any generated fleet.
    #[test]
    fn mask_pruned_inference_matches_unpruned(
        seed in 0u64..1_000,
        images in 12usize..40,
        app_idx in 0usize..3,
    ) {
        let app = [AppKind::Mysql, AppKind::Apache, AppKind::Php][app_idx];
        let pop = Population::training(app, &PopulationOptions::new(images, seed));
        let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
        let thresholds = FilterThresholds::default();
        let engine = RuleInference::predefined();
        let (unpruned, unpruned_stats) = engine
            .try_infer_with(
                &training,
                &thresholds,
                &InferOptions::with_workers(1).without_pruning(),
            )
            .expect("unpruned inference");
        for workers in [1usize, 2, 4] {
            let (pruned, stats) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                .expect("pruned inference");
            let ctx = format!("app={app:?} seed={seed} images={images} workers={workers}");
            prop_assert_eq!(&pruned, &unpruned, "{}", ctx);
            prop_assert_eq!(pruned.render(), unpruned.render(), "{}", ctx);
            prop_assert_eq!(&stats, &unpruned_stats, "{}", ctx);
        }
    }
}
