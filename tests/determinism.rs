//! Regression: parallel rule inference must be invisible in the output.
//!
//! The work-stealing pool may execute `(template, a-chunk)` units in any
//! order on any number of workers; the merged candidate stream — and
//! therefore the learned `RuleSet`, its rendering, and the inference
//! statistics — must be byte-identical to the sequential (`workers = 1`)
//! reference for every fleet.

use encore::infer::{InferOptions, RuleInference};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;

#[test]
fn work_stealing_ruleset_is_identical_to_sequential() {
    let engine = RuleInference::predefined();
    for app in [AppKind::Mysql, AppKind::Apache] {
        for seed in [11u64, 47] {
            let pop = Population::training(app, &PopulationOptions::new(40, seed));
            let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
            let thresholds = FilterThresholds::default();
            let (reference, ref_stats) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(1))
                .expect("sequential inference");
            for workers in [2usize, 8] {
                let (rules, stats) = engine
                    .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                    .expect("parallel inference");
                let ctx = format!("app={app:?} seed={seed} workers={workers}");
                assert_eq!(rules, reference, "{ctx}");
                assert_eq!(rules.render(), reference.render(), "{ctx}");
                assert_eq!(stats, ref_stats, "{ctx}");
            }
        }
    }
}

#[test]
fn learn_is_deterministic_across_worker_counts() {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 5));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let sequential = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(1),
            ..LearnOptions::default()
        },
    );
    let parallel = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(4),
            ..LearnOptions::default()
        },
    );
    assert_eq!(
        sequential.rules().render(),
        parallel.rules().render(),
        "EnCore::learn must not depend on the worker count"
    );
    assert_eq!(sequential.stats(), parallel.stats());
}
