//! Regression: parallel rule inference must be invisible in the output.
//!
//! The work-stealing pool may execute `(template, a-chunk)` units in any
//! order on any number of workers; the merged candidate stream — and
//! therefore the learned `RuleSet`, its rendering, and the inference
//! statistics — must be byte-identical to the sequential (`workers = 1`)
//! reference for every fleet.

use encore::infer::{InferOptions, RuleInference};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The observability sink and its metric statics are process-global; tests
/// here toggle and read them, so every test in this binary serializes on
/// this gate (the harness runs tests on parallel threads).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn work_stealing_ruleset_is_identical_to_sequential() {
    let _gate = gate();
    let engine = RuleInference::predefined();
    for app in [AppKind::Mysql, AppKind::Apache] {
        for seed in [11u64, 47] {
            let pop = Population::training(app, &PopulationOptions::new(40, seed));
            let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
            let thresholds = FilterThresholds::default();
            let (reference, ref_stats) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(1))
                .expect("sequential inference");
            for workers in [2usize, 8] {
                let (rules, stats) = engine
                    .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                    .expect("parallel inference");
                let ctx = format!("app={app:?} seed={seed} workers={workers}");
                assert_eq!(rules, reference, "{ctx}");
                assert_eq!(rules.render(), reference.render(), "{ctx}");
                assert_eq!(stats, ref_stats, "{ctx}");
            }
        }
    }
}

#[test]
fn learn_is_deterministic_across_worker_counts() {
    let _gate = gate();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 5));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let sequential = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(1),
            ..LearnOptions::default()
        },
    );
    let parallel = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(4),
            ..LearnOptions::default()
        },
    );
    assert_eq!(
        sequential.rules().render(),
        parallel.rules().render(),
        "EnCore::learn must not depend on the worker count"
    );
    assert_eq!(sequential.stats(), parallel.stats());
}

#[test]
fn sink_enabled_output_is_byte_identical_to_disabled() {
    let _gate = gate();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(25, 9));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();
    encore::obs::disable();
    let (off_rules, off_stats) = engine
        .try_infer_with(&training, &thresholds, &InferOptions::with_workers(2))
        .expect("inference with sink off");
    encore::obs::enable();
    let (on_rules, on_stats) = engine
        .try_infer_with(&training, &thresholds, &InferOptions::with_workers(2))
        .expect("inference with sink on");
    encore::obs::disable();
    assert_eq!(
        on_rules, off_rules,
        "instrumentation must not perturb rules"
    );
    assert_eq!(
        on_rules.render(),
        off_rules.render(),
        "rendering must be byte-identical with the sink on"
    );
    assert_eq!(on_stats, off_stats);
}

#[test]
fn counter_totals_identical_across_worker_counts() {
    let _gate = gate();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(25, 9));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();
    // Counters and histograms count *work*, which is scheduling-independent;
    // gauges and timers (worker load, wall time) are exempt by design.
    let mut reference = None;
    for workers in [1usize, 2, 4] {
        encore::obs::reset();
        encore::obs::enable();
        engine
            .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
            .expect("inference");
        let report = encore::obs::pipeline_report();
        encore::obs::disable();
        let totals = (report.counters(), report.histograms());
        assert!(
            totals.0.values().any(|&v| v > 0),
            "workers={workers}: instrumentation recorded no work"
        );
        match &reference {
            None => reference = Some(totals),
            Some(first) => {
                assert_eq!(&totals.0, &first.0, "counter totals, workers={workers}");
                assert_eq!(&totals.1, &first.1, "histogram counts, workers={workers}");
            }
        }
    }
}

/// The columnar evaluator is the default inference path; on the seeded
/// BENCH workload it must reproduce the legacy row-major path byte for
/// byte — the learned `RuleSet`, every fleet report, and the
/// `infer.pairs.evaluated` counter — at 1, 2, and 4 workers.
#[test]
fn columnar_path_is_byte_identical_on_the_bench_workload() {
    let _gate = gate();
    // The BENCH populations: mysql, 30 training images (seed 1) checked
    // against 20 targets (seed 77, 21% misconfigured) — exactly what the
    // perf baseline's `encore-detect --train 30 --bench-json` run uses.
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 1));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let targets = Population::training(
        AppKind::Mysql,
        &PopulationOptions::new(20, 77).with_misconfig_percent(21),
    );
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();

    let run = |options: &InferOptions| {
        encore::obs::reset();
        encore::obs::enable();
        let (rules, _) = engine
            .try_infer_with(&training, &thresholds, options)
            .expect("inference");
        let report = encore::obs::pipeline_report();
        encore::obs::disable();
        let pairs = report.counters()["infer.pairs.evaluated"];
        let detector = AnomalyDetector::new(&training, rules.clone());
        let fleet_options = FleetOptions {
            workers: options.workers,
        };
        let transcript: String = detector
            .check_fleet(AppKind::Mysql, targets.images(), &fleet_options)
            .into_iter()
            .map(|result| match result {
                Ok(report) => report.render(),
                Err(e) => format!("error: {e}\n"),
            })
            .collect();
        (rules.render(), pairs, transcript)
    };

    let (ref_rules, ref_pairs, ref_fleet) = run(&InferOptions::with_workers(1).without_columnar());
    assert!(ref_pairs > 0, "the reference run evaluated pairs");
    assert!(!ref_rules.is_empty(), "the reference run learned rules");
    for workers in [1usize, 2, 4] {
        let (rules, pairs, fleet) = run(&InferOptions::with_workers(workers));
        assert_eq!(rules, ref_rules, "RuleSet render, workers={workers}");
        assert_eq!(fleet, ref_fleet, "fleet transcript, workers={workers}");
        assert_eq!(pairs, ref_pairs, "infer.pairs.evaluated, workers={workers}");
    }
}

/// The event log and the cost profiler must be invisible in the output:
/// on the BENCH workload the learned `RuleSet` and the fleet transcript
/// are byte-identical with both fully on and with everything off, and
/// the pinned BENCH invariants (6202 pairs, 29 rules, 121 warnings)
/// still hold under instrumentation.
#[test]
fn event_log_and_profiler_do_not_perturb_the_bench_workload() {
    let _gate = gate();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 1));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let targets = Population::training(
        AppKind::Mysql,
        &PopulationOptions::new(20, 77).with_misconfig_percent(21),
    );
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();
    let events = std::env::temp_dir().join(format!(
        "encore-determinism-events-{}.jsonl",
        std::process::id()
    ));

    let run = |observed: bool| {
        encore::obs::reset();
        if observed {
            encore::obs::enable();
            encore::obs::profile::enable();
            encore::obs::event::install(&events).expect("install event log");
        }
        let (rules, _) = engine
            .try_infer_with(&training, &thresholds, &InferOptions::with_workers(2))
            .expect("inference");
        let detector = AnomalyDetector::new(&training, rules.clone());
        let results = detector.check_fleet(
            AppKind::Mysql,
            targets.images(),
            &FleetOptions { workers: Some(2) },
        );
        let warnings: usize = results
            .iter()
            .map(|r| r.as_ref().map_or(0, Report::len))
            .sum();
        let transcript: String = results
            .into_iter()
            .map(|result| match result {
                Ok(report) => report.render(),
                Err(e) => format!("error: {e}\n"),
            })
            .collect();
        let pairs = observed.then(|| {
            let pairs = encore::obs::pipeline_report().counters()["infer.pairs.evaluated"];
            encore::obs::profile::disable();
            encore::obs::event::shutdown();
            encore::obs::disable();
            pairs
        });
        (rules.len(), rules.render(), transcript, warnings, pairs)
    };

    let (_, off_rules, off_fleet, off_warnings, _) = run(false);
    let (rule_count, on_rules, on_fleet, on_warnings, pairs) = run(true);
    let _ = std::fs::remove_file(&events);
    assert_eq!(
        on_rules, off_rules,
        "RuleSet render drifted under instrumentation"
    );
    assert_eq!(
        on_fleet, off_fleet,
        "fleet transcript drifted under instrumentation"
    );
    assert_eq!(on_warnings, off_warnings);
    // The BENCH pins (see ROADMAP.md): any drift here means the
    // instrumentation changed what the pipeline computes, not just when.
    assert_eq!(pairs, Some(6_202), "infer.pairs.evaluated");
    assert_eq!(rule_count, 29, "learned rule count");
    assert_eq!(on_warnings, 121, "total fleet warnings");
}

/// The per-template profiler must account for at least 95% of the
/// `infer.time` wall clock it decomposes.  With one worker the
/// per-template self-times are disjoint slices of the one measured
/// span, so coverage is a true fraction (no multi-worker overlap).
#[test]
fn template_profiler_covers_the_inference_wall_clock() {
    let _gate = gate();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(30, 1));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let engine = RuleInference::predefined();
    let thresholds = FilterThresholds::default();
    encore::obs::reset();
    encore::obs::enable();
    encore::obs::profile::enable();
    engine
        .try_infer_with(&training, &thresholds, &InferOptions::with_workers(1))
        .expect("inference");
    let attributed = encore::obs::INFER_TEMPLATE_PROFILE.total_nanos();
    let wall = encore::obs::INFER_TIME.total_nanos();
    encore::obs::profile::disable();
    encore::obs::disable();
    assert!(wall > 0, "the inference timer recorded nothing");
    let permille = attributed.saturating_mul(1_000) / wall;
    assert!(
        permille >= 950,
        "template profiler covers only {permille}\u{2030} of infer.time \
         ({attributed} of {wall} ns)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dead-unit pruning consults the presence bitsets to skip
    /// `(template, a-chunk)` units that cannot instantiate anything; the
    /// learned rules, their rendering, and the inference statistics must be
    /// byte-identical to the unpruned reference at every worker count, for
    /// any generated fleet.
    #[test]
    fn mask_pruned_inference_matches_unpruned(
        seed in 0u64..1_000,
        images in 12usize..40,
        app_idx in 0usize..3,
    ) {
        let _gate = gate();
        let app = [AppKind::Mysql, AppKind::Apache, AppKind::Php][app_idx];
        let pop = Population::training(app, &PopulationOptions::new(images, seed));
        let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
        let thresholds = FilterThresholds::default();
        let engine = RuleInference::predefined();
        let (unpruned, unpruned_stats) = engine
            .try_infer_with(
                &training,
                &thresholds,
                &InferOptions::with_workers(1).without_pruning(),
            )
            .expect("unpruned inference");
        for workers in [1usize, 2, 4] {
            let (pruned, stats) = engine
                .try_infer_with(&training, &thresholds, &InferOptions::with_workers(workers))
                .expect("pruned inference");
            let ctx = format!("app={app:?} seed={seed} images={images} workers={workers}");
            prop_assert_eq!(&pruned, &unpruned, "{}", ctx);
            prop_assert_eq!(pruned.render(), unpruned.render(), "{}", ctx);
            prop_assert_eq!(&stats, &unpruned_stats, "{}", ctx);
        }
    }
}
