//! Regression: fleet-scale detection must be invisible in the output.
//!
//! Two serving-layer properties the paper's "train once, detect many"
//! separation (§3, §6) depends on:
//!
//! 1. `check_fleet` may schedule target images on any number of pool
//!    workers; the per-system reports must be byte-identical to a
//!    sequential `check_image` loop.
//! 2. A detector reconstructed from a rendered-and-reparsed
//!    `DetectorSnapshot` must produce byte-identical reports to the
//!    detector that trained on the corpus — the artifact carries the whole
//!    learned state, losslessly.

use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use encore_sysimage::SystemImage;

fn learn(app: AppKind, images: usize, seed: u64) -> EnCore {
    let pop = Population::training(app, &PopulationOptions::new(images, seed));
    let training = TrainingSet::assemble(app, pop.images()).expect("training assembles");
    EnCore::learn(&training, &LearnOptions::default())
}

fn target_fleet(app: AppKind, n: usize, seed: u64) -> Vec<SystemImage> {
    Population::training(
        app,
        &PopulationOptions::new(n, seed).with_misconfig_percent(21),
    )
    .images()
    .to_vec()
}

/// Render a whole fleet result as one string (per-image assembly errors
/// included), so comparisons catch ordering and content drift alike.
fn render_fleet(results: &[Result<Report, encore_assemble::AssembleError>]) -> String {
    let mut out = String::new();
    for (i, result) in results.iter().enumerate() {
        out.push_str(&format!("== {i}\n"));
        match result {
            Ok(report) => out.push_str(&report.render()),
            Err(e) => out.push_str(&format!("error: {e}\n")),
        }
    }
    out
}

#[test]
fn check_fleet_is_identical_to_sequential_for_every_worker_count() {
    for app in [AppKind::Mysql, AppKind::Apache] {
        let engine = learn(app, 30, 5);
        let targets = target_fleet(app, 20, 77);
        let sequential: String = render_fleet(
            &targets
                .iter()
                .map(|img| engine.check_image(app, img))
                .collect::<Vec<_>>(),
        );
        for workers in [1usize, 2, 4] {
            let batch = engine.check_fleet(app, &targets, &FleetOptions::with_workers(workers));
            assert_eq!(
                render_fleet(&batch),
                sequential,
                "app={app:?} workers={workers}"
            );
        }
    }
}

#[test]
fn snapshot_save_load_produces_identical_reports() {
    for app in [AppKind::Mysql, AppKind::Php] {
        let engine = learn(app, 30, 5);
        let text = engine.snapshot().render();
        let snapshot = DetectorSnapshot::parse(&text).expect("snapshot parses");
        // The artifact itself round-trips byte-identically...
        assert_eq!(snapshot.render(), text, "app={app:?}");
        let loaded = AnomalyDetector::from_snapshot(snapshot);
        assert_eq!(loaded.rules(), engine.rules(), "app={app:?}");
        // ...and so do the reports it produces on a misconfigured fleet.
        let targets = target_fleet(app, 20, 77);
        let original = engine.check_fleet(app, &targets, &FleetOptions::default());
        let reloaded = loaded.check_fleet(app, &targets, &FleetOptions::default());
        assert_eq!(
            render_fleet(&reloaded),
            render_fleet(&original),
            "app={app:?}: a reloaded detector must serve identical reports"
        );
    }
}

#[test]
fn fleet_results_stay_index_aligned_with_broken_images() {
    let app = AppKind::Mysql;
    let engine = learn(app, 20, 5);
    let mut targets = target_fleet(app, 4, 77);
    // An image with no configuration at all fails assembly; its error must
    // stay at its own index instead of poisoning the batch.
    targets.insert(2, SystemImage::builder("hollow").build());
    let results = engine.check_fleet(app, &targets, &FleetOptions::with_workers(2));
    assert_eq!(results.len(), targets.len());
    assert!(results[2].is_err(), "broken image reports its own error");
    for (i, result) in results.iter().enumerate() {
        if i != 2 {
            assert!(result.is_ok(), "image {i} checks");
        }
    }
}
