//! Report deltas and the watch loop, end to end: a report diffed against
//! itself is empty, a perturbed counter trips the default policy with a
//! violation naming the metric and its gate, counter/histogram sections
//! never differ across worker counts, and [`Watcher`] cycles re-check only
//! added/changed targets while appending one parseable report per cycle to
//! the JSONL trace.

use encore::obs;
use encore::obs::{DeltaPolicy, PipelineReport, ReportDelta};
use encore::prelude::*;
use encore_corpus::genimage::{Population, PopulationOptions};
use encore_model::AppKind;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The observability sink and its metric statics are process-global;
/// every test in this binary toggles or reads them, so they serialize on
/// this gate (the harness runs tests on parallel threads).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Train on a small MySQL fleet and re-check it, returning the full
/// pipeline report for the run.  Callers hold the gate.
fn instrumented_run(workers: usize) -> PipelineReport {
    obs::reset();
    obs::enable();
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(15, 3));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    let detector = EnCore::learn(
        &training,
        &LearnOptions {
            workers: Some(workers),
            ..LearnOptions::default()
        },
    )
    .into_detector();
    let _ = detector.check_fleet(
        AppKind::Mysql,
        pop.images(),
        &FleetOptions {
            workers: Some(workers),
        },
    );
    let report = obs::pipeline_report();
    obs::disable();
    report
}

/// A unique, cleaned-up temp directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("encore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn self_diff_is_empty_and_passes_the_default_policy() {
    let _gate = gate();
    let report = instrumented_run(2);
    assert!(
        report.counters().values().any(|&v| v > 0),
        "the run recorded work"
    );
    let delta = ReportDelta::diff(&report, &report);
    assert!(delta.is_empty(), "self-diff: {}", delta.render_text());
    assert_eq!(delta.render_text(), "== report delta: no differences ==\n");
    assert!(DeltaPolicy::default().violations(&delta).is_empty());
}

#[test]
fn perturbed_counter_violation_names_the_metric_and_gate() {
    let _gate = gate();
    let base = instrumented_run(2);
    let mut current = base.clone();
    let (name, value) = {
        let phase = &mut current.phases[2]; // infer
        let counter = phase
            .counters
            .iter_mut()
            .find(|(name, _)| name == "infer.pairs.evaluated")
            .expect("infer.pairs.evaluated present");
        counter.1 += 1;
        counter.clone()
    };
    let delta = ReportDelta::diff(&base, &current);
    assert_eq!(delta.counters.len(), 1, "{}", delta.render_text());
    assert_eq!(delta.counters[0].name, name);
    assert_eq!(delta.counters[0].current, Some(value));

    let violations = DeltaPolicy::default().violations(&delta);
    assert_eq!(violations.len(), 1, "exact gate trips on the counter");
    let rendered = violations[0].to_string();
    assert!(rendered.contains(&name), "{rendered}");
    assert!(rendered.contains("exact"), "{rendered}");
}

#[test]
fn worker_count_never_changes_counters_or_histograms() {
    let _gate = gate();
    let reference = instrumented_run(1);
    for workers in [2usize, 4] {
        let report = instrumented_run(workers);
        let delta = ReportDelta::diff(&reference, &report);
        assert!(
            delta.counters.is_empty(),
            "workers={workers}: counter deltas\n{}",
            delta.render_text()
        );
        assert!(
            delta.histograms.is_empty(),
            "workers={workers}: histogram deltas\n{}",
            delta.render_text()
        );
        // Gauges and timers (worker load, wall time) may differ; the
        // default policy treats them as informational.
        assert!(DeltaPolicy::default().violations(&delta).is_empty());
    }
}

/// Build a small trained detector for the watch tests.
fn small_detector() -> AnomalyDetector {
    let pop = Population::training(AppKind::Mysql, &PopulationOptions::new(12, 7));
    let training = TrainingSet::assemble(AppKind::Mysql, pop.images()).expect("training assembles");
    EnCore::learn(&training, &LearnOptions::default()).into_detector()
}

#[test]
fn watch_cycles_recheck_only_changed_targets_and_emit_jsonl() {
    let _gate = gate();
    let detector = small_detector();
    let dir = scratch_dir("watch-jsonl");
    let report_path = dir.join(".trace.jsonl"); // dotfile: not a target
    std::fs::write(dir.join("a.cnf"), "[mysqld]\nport = 3306\n").unwrap();
    std::fs::write(
        dir.join("b.cnf"),
        "[mysqld]\nport = 3307\nskip-networking\n",
    )
    .unwrap();

    obs::enable();
    let mut options = WatchOptions::new(AppKind::Mysql, &dir);
    options.report_path = Some(report_path.clone());
    let mut watcher = Watcher::new(detector, options);

    let first = watcher.cycle().expect("cycle 1");
    assert_eq!((first.added, first.changed, first.removed), (2, 0, 0));
    assert_eq!(first.results.len(), 2, "both new targets re-checked");
    assert_eq!(first.tracked, 2);
    let counters = first.report.counters();
    assert_eq!(counters["detect.watch.cycles"], 1);
    assert_eq!(counters["detect.watch.targets_added"], 2);
    assert_eq!(counters["detect.watch.targets_rechecked"], 2);

    // Grow the file so the size component of the signature changes even
    // on filesystems with coarse mtime granularity.
    std::thread::sleep(std::time::Duration::from_millis(20));
    std::fs::write(
        dir.join("b.cnf"),
        "[mysqld]\nport = 3307\nskip-networking\nmax_connections = 100\n",
    )
    .unwrap();
    let second = watcher.cycle().expect("cycle 2");
    assert_eq!((second.added, second.changed, second.removed), (0, 1, 0));
    assert_eq!(second.results.len(), 1, "only the changed target re-checks");
    assert_eq!(second.results[0].0, "b.cnf");

    let third = watcher.cycle().expect("cycle 3");
    assert_eq!((third.added, third.changed, third.removed), (0, 0, 0));
    assert!(third.results.is_empty(), "quiet cycle re-checks nothing");
    assert_eq!(third.tracked, 2);
    obs::disable();

    let trace = std::fs::read_to_string(&report_path).expect("trace written");
    let lines: Vec<&str> = trace.lines().collect();
    assert_eq!(lines.len(), 3, "one JSONL line per cycle");
    for (i, line) in lines.iter().enumerate() {
        obs::json::parse(line).unwrap_or_else(|e| panic!("line {}: {e:?}", i + 1));
        let parsed =
            PipelineReport::parse_json(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        assert_eq!(parsed.counters()["detect.watch.cycles"], 1);
    }
    let first_line = PipelineReport::parse_json(lines[0]).unwrap();
    assert_eq!(first_line.counters()["detect.watch.targets_added"], 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_detects_same_size_rewrite_with_preserved_mtime() {
    let _gate = gate();
    let detector = small_detector();
    let dir = scratch_dir("watch-same-size");
    let target = dir.join("a.cnf");
    std::fs::write(&target, "[mysqld]\nport = 3306\n").unwrap();

    obs::enable();
    let mut watcher = Watcher::new(detector, WatchOptions::new(AppKind::Mysql, &dir));
    let first = watcher.cycle().expect("cycle 1");
    assert_eq!((first.added, first.changed), (1, 0));
    let mtime = std::fs::metadata(&target).unwrap().modified().unwrap();

    // Same byte length, different contents, original mtime restored: the
    // metadata signature is identical, so only the content fingerprint can
    // flag the rewrite.  Regression for the watcher missing in-place
    // same-size edits within the filesystem's mtime granularity.
    std::fs::write(&target, "[mysqld]\nport = 3307\n").unwrap();
    std::fs::File::options()
        .write(true)
        .open(&target)
        .unwrap()
        .set_modified(mtime)
        .unwrap();
    let second = watcher.cycle().expect("cycle 2");
    assert_eq!((second.added, second.changed, second.removed), (0, 1, 0));
    assert_eq!(second.results.len(), 1, "the rewritten target re-checks");
    assert_eq!(second.results[0].0, "a.cnf");

    let third = watcher.cycle().expect("cycle 3");
    assert_eq!((third.added, third.changed, third.removed), (0, 0, 0));
    assert!(third.results.is_empty());
    obs::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_quiet_cycles_produce_identical_counter_sections() {
    let _gate = gate();
    let detector = small_detector();
    let dir = scratch_dir("watch-quiet");
    std::fs::write(dir.join("only.cnf"), "[mysqld]\nport = 3306\n").unwrap();

    obs::enable();
    let mut watcher = Watcher::new(detector, WatchOptions::new(AppKind::Mysql, &dir));
    let _warmup = watcher.cycle().expect("cycle 1");
    let quiet_a = watcher.cycle().expect("cycle 2");
    let quiet_b = watcher.cycle().expect("cycle 3");
    obs::disable();

    // Regression: each cycle's report must cover only that cycle.  Were
    // the snapshot not paired atomically with a reset, counters would
    // accumulate and the second quiet cycle would read higher than the
    // first.
    assert_eq!(quiet_a.report.counters(), quiet_b.report.counters());
    assert_eq!(quiet_a.report.counters()["detect.watch.cycles"], 1);
    let delta = ReportDelta::diff(&quiet_a.report, &quiet_b.report);
    assert!(delta.counters.is_empty(), "{}", delta.render_text());
    assert!(delta.histograms.is_empty(), "{}", delta.render_text());
    let _ = std::fs::remove_dir_all(&dir);
}
